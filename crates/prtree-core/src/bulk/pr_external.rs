//! External-memory PR-tree bulk loading (§2.1 "Efficient construction
//! algorithm", §2.2).
//!
//! Each stage builds the leaves of a pseudo-PR-tree over an entry stream:
//!
//! 1. sort the stage input into `2D` lists, one per mapped axis, ordered
//!    by *extremeness* (most extreme first),
//! 2. recursively: pull the `B` most extreme not-yet-taken entries off
//!    the front of each list (the priority leaves, written as tree pages
//!    immediately), find the median of the remainder along the
//!    round-robin kd axis by a counting scan, and distribute all lists
//!    into the two sides,
//! 3. once a sub-problem fits in main memory, finish it with the exact
//!    in-memory recursion from [`crate::bulk::pr`].
//!
//! The paper batches `Θ(log M)` kd levels per pass with an in-memory
//! grid; the memory-fitting recursion used here (taken from the same
//! section's closing remarks) has the same `O(N/B · log_{M/B} N/B)` I/O
//! complexity for realistic `N/M` and produces the same tree, because
//! the split rule is unchanged. DESIGN.md §5 records this substitution.

use crate::bulk::external::{finish_root, ExternalConfig};
use crate::bulk::pr::PrTreeLoader;
use crate::entry::Entry;
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::page_ptr;
use pr_em::{external_sort_by, BlockDevice, EmError, Record, Stream, StreamReader, StreamWriter};
use pr_geom::mapped::{cmp_extreme_on_axis, cmp_items_on_axis};
use pr_geom::{Axis, Item};
use std::collections::HashSet;
use std::sync::Arc;

/// External PR-tree loader.
#[derive(Debug, Clone, Copy)]
pub struct PrExternalLoader {
    /// Memory budget (`M`).
    pub config: ExternalConfig,
    /// Structural knobs shared with the in-memory loader.
    pub inner: PrTreeLoader,
}

impl PrExternalLoader {
    /// Loader with the given memory budget and default structure.
    pub fn new(config: ExternalConfig) -> Self {
        PrExternalLoader {
            config,
            inner: PrTreeLoader::default(),
        }
    }

    /// Bulk-loads a PR-tree from an entry stream on `dev`.
    pub fn load<const D: usize>(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        input: &Stream,
    ) -> Result<RTree<D>, EmError> {
        if input.is_empty() {
            return RTree::new_empty(dev, params);
        }
        let len = input.len();
        let mut level: u8 = 0;
        let mut current: Option<Stream> = None; // None = use `input`
        loop {
            let cap = params.cap_at_level(level);
            let stream_ref = current.as_ref().unwrap_or(input);
            let count = stream_ref.len();
            if count <= cap as u64 {
                let tree = finish_root(Arc::clone(&dev), params, stream_ref, level, len)?;
                if let Some(s) = current {
                    s.discard(dev.as_ref());
                }
                return Ok(tree);
            }
            let parents = self.stage::<D>(dev.as_ref(), stream_ref, cap, level)?;
            if let Some(s) = current {
                s.discard(dev.as_ref());
            }
            current = Some(parents);
            level = level.checked_add(1).expect("tree height exceeds 255");
        }
    }

    /// One stage: writes the pseudo-PR-tree leaf pages for `input` at
    /// `level` and returns the parent-entry stream.
    fn stage<const D: usize>(
        &self,
        dev: &dyn BlockDevice,
        input: &Stream,
        cap: usize,
        level: u8,
    ) -> Result<Stream, EmError> {
        let prio = self.inner.prio_for(cap);
        let snap = self.inner.snap_splits.then_some(cap);
        let mem_fit = self.config.records_fit(Entry::<D>::SIZE) as u64;
        let mut parent_writer = StreamWriter::<Entry<D>>::new(dev);

        // Small stages skip the external machinery entirely.
        if input.len() <= mem_fit {
            let entries = input.read_all::<Entry<D>>(dev)?;
            for group in self.inner.stage_groups_from(entries, cap, Axis(0)) {
                write_group(dev, level, group, &mut parent_writer)?;
            }
            return parent_writer.finish();
        }

        // 2D extremeness-sorted lists of the whole stage input.
        let mut lists = Vec::with_capacity(2 * D);
        for axis in Axis::all::<D>() {
            lists.push(external_sort_by::<Entry<D>, _>(
                dev,
                input,
                self.config.sort(),
                move |a, b| cmp_extreme_on_axis(axis, &as_item(a), &as_item(b)),
            )?);
        }

        let mut stack: Vec<(Vec<Stream>, u64, Axis)> = vec![(lists, input.len(), Axis(0))];
        while let Some((lists, count, axis)) = stack.pop() {
            self.node_external::<D>(
                dev,
                lists,
                count,
                axis,
                cap,
                prio,
                snap,
                mem_fit,
                level,
                &mut parent_writer,
                &mut stack,
            )?;
        }
        parent_writer.finish()
    }

    /// Processes one pseudo-PR-tree node externally: priority leaves,
    /// median, distribution. Pushes the two children onto `stack`.
    #[allow(clippy::too_many_arguments)]
    fn node_external<const D: usize>(
        &self,
        dev: &dyn BlockDevice,
        lists: Vec<Stream>,
        count: u64,
        axis: Axis,
        cap: usize,
        prio: usize,
        snap: Option<usize>,
        mem_fit: u64,
        level: u8,
        parent_writer: &mut StreamWriter<Entry<D>>,
        stack: &mut Vec<(Vec<Stream>, u64, Axis)>,
    ) -> Result<(), EmError> {
        // In-memory base case: exact same recursion as the in-memory
        // loader, resuming at the current axis.
        if count <= mem_fit || count <= cap as u64 {
            let entries = lists[0].read_all::<Entry<D>>(dev)?;
            discard_all(dev, lists);
            for group in self.inner.stage_groups_from(entries, cap, axis) {
                write_group(dev, level, group, parent_writer)?;
            }
            return Ok(());
        }

        // 1. Priority leaves: the `prio` most extreme remaining entries
        //    per axis, straight off the front of each list.
        let mut taken: HashSet<u32> = HashSet::with_capacity(2 * D * prio);
        for a in Axis::all::<D>() {
            if taken.len() as u64 == count {
                break;
            }
            let mut leaf: Vec<Entry<D>> = Vec::with_capacity(prio);
            let mut reader = StreamReader::<Entry<D>>::new(dev, &lists[a.0]);
            while leaf.len() < prio {
                match reader.next_record()? {
                    Some(e) => {
                        if taken.insert(e.ptr) {
                            leaf.push(e);
                        }
                    }
                    None => break,
                }
            }
            if !leaf.is_empty() {
                write_group(dev, level, leaf, parent_writer)?;
            }
        }

        let remaining = count - taken.len() as u64;
        if remaining == 0 {
            discard_all(dev, lists);
            return Ok(());
        }
        if remaining <= cap as u64 {
            // Remainder forms a single kd leaf.
            let leaf = collect_remaining::<D>(dev, &lists[0], &taken, remaining as usize)?;
            discard_all(dev, lists);
            write_group(dev, level, leaf, parent_writer)?;
            return Ok(());
        }

        // 2. Median of the remainder along the kd axis. The in-memory
        //    split puts the `mid` strictly-smaller entries left; the
        //    threshold is the entry of ascending rank `mid`.
        let mid = split_point(remaining as usize, snap) as u64;
        let ascending = axis.is_min_side::<D>();
        let target_rank = if ascending {
            mid
        } else {
            // Max-side lists are stored in exact-reverse order.
            remaining - 1 - mid
        };
        let threshold = nth_remaining::<D>(dev, &lists[axis.0], &taken, target_rank)?;

        // 3. Distribute every list into the two sides, preserving order.
        let mut left_lists = Vec::with_capacity(2 * D);
        let mut right_lists = Vec::with_capacity(2 * D);
        for list in &lists {
            let mut reader = StreamReader::<Entry<D>>::new(dev, list);
            let mut lw = StreamWriter::<Entry<D>>::new(dev);
            let mut rw = StreamWriter::<Entry<D>>::new(dev);
            while let Some(e) = reader.next_record()? {
                if taken.contains(&e.ptr) {
                    continue;
                }
                if cmp_items_on_axis(axis, &as_item(&e), &as_item(&threshold))
                    == std::cmp::Ordering::Less
                {
                    lw.push(&e)?;
                } else {
                    rw.push(&e)?;
                }
            }
            left_lists.push(lw.finish()?);
            right_lists.push(rw.finish()?);
        }
        discard_all(dev, lists);

        let next = axis.next::<D>();
        stack.push((right_lists, remaining - mid, next));
        stack.push((left_lists, mid, next));
        Ok(())
    }
}

/// The in-memory split position for `n` remaining entries (mirrors
/// `kd_split::median_split` exactly).
fn split_point(n: usize, snap_to: Option<usize>) -> usize {
    let mut mid = n / 2;
    if let Some(cap) = snap_to {
        if cap > 0 && n > cap {
            let mut snapped = ((mid + cap / 2) / cap) * cap;
            if snapped == 0 {
                snapped = cap;
            }
            mid = snapped.min(n - 1);
        }
    }
    mid.clamp(1, n - 1)
}

fn as_item<const D: usize>(e: &Entry<D>) -> Item<D> {
    Item {
        rect: e.rect,
        id: e.ptr,
    }
}

fn discard_all(dev: &dyn BlockDevice, lists: Vec<Stream>) {
    for l in lists {
        l.discard(dev);
    }
}

/// Writes one leaf-group page and appends its parent entry.
fn write_group<const D: usize>(
    dev: &dyn BlockDevice,
    level: u8,
    group: Vec<Entry<D>>,
    parent_writer: &mut StreamWriter<Entry<D>>,
) -> Result<(), EmError> {
    debug_assert!(!group.is_empty());
    let mbr = Entry::mbr(&group);
    let page = NodePage::new(level, group).append(dev)?;
    parent_writer.push(&Entry::new(mbr, page_ptr(page)?))
}

/// Collects all not-taken entries from a list (there must be exactly
/// `expect` of them).
fn collect_remaining<const D: usize>(
    dev: &dyn BlockDevice,
    list: &Stream,
    taken: &HashSet<u32>,
    expect: usize,
) -> Result<Vec<Entry<D>>, EmError> {
    let mut out = Vec::with_capacity(expect);
    let mut reader = StreamReader::<Entry<D>>::new(dev, list);
    while let Some(e) = reader.next_record()? {
        if !taken.contains(&e.ptr) {
            out.push(e);
        }
    }
    debug_assert_eq!(out.len(), expect);
    Ok(out)
}

/// The `rank`-th (0-indexed) not-taken entry of a list.
fn nth_remaining<const D: usize>(
    dev: &dyn BlockDevice,
    list: &Stream,
    taken: &HashSet<u32>,
    rank: u64,
) -> Result<Entry<D>, EmError> {
    let mut reader = StreamReader::<Entry<D>>::new(dev, list);
    let mut seen = 0u64;
    while let Some(e) = reader.next_record()? {
        if taken.contains(&e.ptr) {
            continue;
        }
        if seen == rank {
            return Ok(e);
        }
        seen += 1;
    }
    Err(EmError::Corrupt(format!(
        "median rank {rank} beyond remaining entries ({seen})"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkLoader;
    use pr_em::MemDevice;
    use pr_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                let w: f64 = rng.gen_range(0.0..1.5);
                Item::new(Rect::xyxy(x, y, x + w, y + w * 0.5), i)
            })
            .collect()
    }

    /// Leaf contents as a canonical multiset (each group id-sorted, groups
    /// sorted) — page ids differ between devices, contents must not.
    fn leaf_groups(t: &RTree<2>) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut stack = vec![t.root()];
        while let Some(p) = stack.pop() {
            let (node, _) = t.read_node(p).unwrap();
            if node.is_leaf() {
                let mut ids: Vec<u32> = node.entries.iter().map(|e| e.ptr).collect();
                ids.sort_unstable();
                out.push(ids);
            } else {
                for e in &node.entries {
                    stack.push(e.ptr as u64);
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn external_matches_in_memory_exactly() {
        let items = random_items(3000, 42);
        let params = TreeParams::with_cap::<2>(16);

        let dev_mem: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let t_mem = PrTreeLoader::default()
            .load(Arc::clone(&dev_mem), params, items.clone())
            .unwrap();

        let dev_ext: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = Stream::from_iter(dev_ext.as_ref(), items.iter().map(|&i| Entry::from_item(i)))
            .unwrap();
        // Tiny memory budget: forces several external kd levels.
        let loader = PrExternalLoader::new(ExternalConfig::with_memory(40 * params.page_size));
        let t_ext = loader
            .load::<2>(Arc::clone(&dev_ext), params, &input)
            .unwrap();

        t_ext.validate().unwrap().assert_ok();
        assert_eq!(t_mem.len(), t_ext.len());
        assert_eq!(t_mem.height(), t_ext.height());
        assert_eq!(
            leaf_groups(&t_mem),
            leaf_groups(&t_ext),
            "external and in-memory PR construction must agree"
        );
    }

    #[test]
    fn queries_match_brute_force_after_external_build() {
        let items = random_items(2000, 5);
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input =
            Stream::from_iter(dev.as_ref(), items.iter().map(|&i| Entry::from_item(i))).unwrap();
        let loader = PrExternalLoader::new(ExternalConfig::with_memory(30 * params.page_size));
        let t = loader.load::<2>(Arc::clone(&dev), params, &input).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..30 {
            let x: f64 = rng.gen_range(0.0..95.0);
            let y: f64 = rng.gen_range(0.0..95.0);
            let q = Rect::xyxy(x, y, x + 5.0, y + 5.0);
            let mut got = t.window(&q).unwrap();
            let mut want = crate::query::brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn large_budget_falls_back_to_memory_path() {
        let items = random_items(500, 9);
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input =
            Stream::from_iter(dev.as_ref(), items.iter().map(|&i| Entry::from_item(i))).unwrap();
        let loader = PrExternalLoader::new(ExternalConfig::with_memory(64 << 20));
        let before = dev.io_stats();
        let t = loader.load::<2>(Arc::clone(&dev), params, &input).unwrap();
        let cost = dev.io_stats().since(before);
        t.validate().unwrap().assert_ok();
        // With everything in memory the stage reads the input once and
        // writes pages once — no sorting passes.
        let input_blocks = input.num_blocks() as u64;
        assert!(cost.reads <= 2 * input_blocks + 10);
    }

    #[test]
    fn empty_input() {
        let params = TreeParams::with_cap::<2>(8);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = Stream::from_iter::<Entry<2>>(dev.as_ref(), []).unwrap();
        let loader = PrExternalLoader::new(ExternalConfig::with_memory(1 << 20));
        let t = loader.load::<2>(Arc::clone(&dev), params, &input).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn split_point_mirrors_median_split() {
        use crate::bulk::kd_split::median_split;
        for n in 2..60usize {
            for snap in [None, Some(4), Some(7)] {
                let items: Vec<Entry<2>> = (0..n)
                    .map(|i| Entry::new(Rect::xyxy(i as f64, 0.0, i as f64 + 0.5, 1.0), i as u32))
                    .collect();
                let (l, _r) = median_split(items, Axis(0), snap);
                assert_eq!(l.len(), split_point(n, snap), "n={n} snap={snap:?}");
            }
        }
    }
}
