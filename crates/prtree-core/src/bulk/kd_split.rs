//! Shared pseudo-PR-tree splitting primitives.
//!
//! Both the standalone [`crate::pseudo::PseudoPrTree`] and the PR-tree
//! bulk loader are built from two operations on a working set of entries:
//!
//! 1. **priority extraction** — remove the `k` most extreme entries along
//!    a mapped axis (leftmost left edges, bottommost bottom edges,
//!    rightmost right edges, topmost top edges — §2.1),
//! 2. **median split** — divide the remainder by the median of the
//!    current round-robin kd axis, optionally snapping the split to a
//!    multiple of the leaf capacity so almost every leaf comes out full
//!    (the ">99% space utilization" trick at the end of §2.1).
//!
//! Keeping them here guarantees the in-memory and external construction
//! paths produce *identical* trees (a property the tests rely on).

use crate::entry::Entry;
use pr_geom::mapped::{cmp_extreme_on_axis, cmp_items_on_axis};
use pr_geom::{Axis, Item};

fn entry_as_item<const D: usize>(e: &Entry<D>) -> Item<D> {
    Item {
        rect: e.rect,
        id: e.ptr,
    }
}

/// Removes and returns the `k` most extreme entries along `axis`
/// (`k` is clamped to the set size). Order within the returned leaf and
/// within the remainder is unspecified but deterministic.
pub fn extract_priority<const D: usize>(
    items: &mut Vec<Entry<D>>,
    axis: Axis,
    k: usize,
) -> Vec<Entry<D>> {
    let k = k.min(items.len());
    if k == 0 {
        return Vec::new();
    }
    if k < items.len() {
        items.select_nth_unstable_by(k - 1, |a, b| {
            cmp_extreme_on_axis(axis, &entry_as_item(a), &entry_as_item(b))
        });
    }
    let rest = items.split_off(k);
    std::mem::replace(items, rest)
}

/// Splits `items` at the median of `axis` into `(left, right)`.
///
/// With `snap_to = Some(cap)` the split point is moved to the nearest
/// multiple of `cap` (keeping both sides non-empty), so that fully-packed
/// leaves fall out of the recursion; `None` gives the exact median of the
/// paper's structural definition. Each side always receives at most
/// `half + cap` entries, preserving the kd-tree analysis of Lemma 2.
pub fn median_split<const D: usize>(
    mut items: Vec<Entry<D>>,
    axis: Axis,
    snap_to: Option<usize>,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let n = items.len();
    debug_assert!(n >= 2, "cannot split fewer than two items");
    let mut mid = n / 2;
    if let Some(cap) = snap_to {
        if cap > 0 && n > cap {
            // Nearest multiple of cap; never 0 and never ≥ n (mid + cap/2
            // < n because cap < n), so both sides stay non-empty.
            let mut snapped = ((mid + cap / 2) / cap) * cap;
            if snapped == 0 {
                snapped = cap;
            }
            mid = snapped.min(n - 1);
        }
    }
    mid = mid.clamp(1, n - 1);
    items.select_nth_unstable_by(mid, |a, b| {
        cmp_items_on_axis(axis, &entry_as_item(a), &entry_as_item(b))
    });
    let right = items.split_off(mid);
    (items, right)
}

/// One pseudo-PR-tree node's worth of work: extracts up to `2D` priority
/// leaves of size `prio` (in the paper's xmin, ymin, …, xmax, ymax order)
/// and returns them along with the remaining entries.
pub fn extract_all_priority_leaves<const D: usize>(
    items: &mut Vec<Entry<D>>,
    prio: usize,
) -> Vec<Vec<Entry<D>>> {
    let mut leaves = Vec::with_capacity(2 * D);
    for axis in Axis::all::<D>() {
        if items.is_empty() {
            break;
        }
        let leaf = extract_priority(items, axis, prio);
        if !leaf.is_empty() {
            leaves.push(leaf);
        }
    }
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_geom::Rect;

    fn entry(xmin: f64, ymin: f64, xmax: f64, ymax: f64, id: u32) -> Entry<2> {
        Entry::new(Rect::xyxy(xmin, ymin, xmax, ymax), id)
    }

    fn row(n: usize) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                entry(f, 0.0, f + 0.5, 1.0, i as u32)
            })
            .collect()
    }

    #[test]
    fn extract_priority_takes_most_extreme() {
        let mut items = row(10);
        // xmin axis: smallest lo — ids 0, 1, 2.
        let leaf = extract_priority(&mut items, Axis(0), 3);
        let mut ids: Vec<_> = leaf.iter().map(|e| e.ptr).collect();
        ids.sort_unstable();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(items.len(), 7);
        // xmax axis on the remainder: largest hi — ids 7, 8, 9.
        let leaf = extract_priority(&mut items, Axis(2), 3);
        let mut ids: Vec<_> = leaf.iter().map(|e| e.ptr).collect();
        ids.sort_unstable();
        assert_eq!(ids, [7, 8, 9]);
    }

    #[test]
    fn extract_priority_clamps_and_handles_empty() {
        let mut items = row(2);
        let leaf = extract_priority(&mut items, Axis(0), 5);
        assert_eq!(leaf.len(), 2);
        assert!(items.is_empty());
        assert!(extract_priority::<2>(&mut items, Axis(0), 3).is_empty());
    }

    #[test]
    fn median_split_exact() {
        let (l, r) = median_split(row(10), Axis(0), None);
        assert_eq!(l.len(), 5);
        assert_eq!(r.len(), 5);
        let lmax = l.iter().map(|e| e.ptr).max().unwrap();
        let rmin = r.iter().map(|e| e.ptr).min().unwrap();
        assert!(lmax < rmin, "all left xmin < all right xmin");
    }

    #[test]
    fn median_split_snaps_to_capacity() {
        // 10 items, cap 4: exact mid = 5, snapped to 4.
        let (l, r) = median_split(row(10), Axis(0), Some(4));
        assert_eq!(l.len(), 4);
        assert_eq!(r.len(), 6);
        // 9 items, cap 4: mid = 4 (already a multiple).
        let (l, r) = median_split(row(9), Axis(0), Some(4));
        assert_eq!((l.len(), r.len()), (4, 5));
        // 6 items, cap 4: mid = 3 → snapped to 4, right side non-empty.
        let (l, r) = median_split(row(6), Axis(0), Some(4));
        assert_eq!((l.len(), r.len()), (4, 2));
    }

    #[test]
    fn median_split_both_sides_nonempty() {
        for n in 2..40 {
            for cap in [1usize, 2, 3, 4, 7] {
                let (l, r) = median_split(row(n), Axis(0), Some(cap));
                assert!(!l.is_empty() && !r.is_empty(), "n={n} cap={cap}");
                assert_eq!(l.len() + r.len(), n);
            }
            let (l, r) = median_split(row(n), Axis(1), None);
            assert!(!l.is_empty() && !r.is_empty());
        }
    }

    #[test]
    fn all_priority_leaves_cycle_axes() {
        let mut items = row(20);
        let leaves = extract_all_priority_leaves(&mut items, 4);
        assert_eq!(leaves.len(), 4);
        assert_eq!(items.len(), 4);
        // First leaf: smallest xmin (ids 0..4). Fourth leaf: largest ymax
        // among what remained; all ymax equal → tie-break by id.
        let mut first: Vec<_> = leaves[0].iter().map(|e| e.ptr).collect();
        first.sort_unstable();
        assert_eq!(first, [0, 1, 2, 3]);
    }

    #[test]
    fn all_priority_leaves_small_input() {
        let mut items = row(6);
        let leaves = extract_all_priority_leaves(&mut items, 4);
        // 4 + 2: second leaf partial, then nothing left.
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].len(), 4);
        assert_eq!(leaves[1].len(), 2);
        assert!(items.is_empty());
    }

    #[test]
    fn ties_broken_by_id_deterministically() {
        // All rectangles identical: extraction must still be deterministic
        // (by id) so external and in-memory builds agree.
        let mut items: Vec<Entry<2>> = (0..10).map(|i| entry(0.0, 0.0, 1.0, 1.0, i)).collect();
        let leaf = extract_priority(&mut items, Axis(0), 3);
        let mut ids: Vec<_> = leaf.iter().map(|e| e.ptr).collect();
        ids.sort_unstable();
        assert_eq!(ids, [0, 1, 2]);
        // ymax axis (max side): extreme = largest ymax; ties resolve to
        // the largest id (exact reverse of the ascending order).
        let leaf = extract_priority(&mut items, Axis(3), 3);
        let mut ids: Vec<_> = leaf.iter().map(|e| e.ptr).collect();
        ids.sort_unstable();
        assert_eq!(ids, [7, 8, 9]);
    }
}
