//! Top-down Greedy Split (TGS) — García, López & Leutenegger,
//! reference 12 of the paper and its strongest query-time competitor.
//!
//! To build a node over `n` rectangles, TGS recursively *binary-partitions*
//! the set until it falls apart into at most `B` slots of `unit =
//! B^(h−1)·B_leaf` rectangles each (sizes rounded to powers of the fanout,
//! per the paper's footnote 1). Each binary partition considers, for every
//! one-dimensional ordering (by `xmin`, `ymin`, `xmax`, `ymax` in 2-D) and
//! every unit-aligned cut position, the **sum of the areas of the two
//! resulting bounding boxes**, and greedily applies the cheapest cut. The
//! children are then built recursively.
//!
//! The implementation sorts the input once per ordering and *distributes*
//! the sorted sequences through every binary split (exactly like the
//! external variant), so each binary level costs `O(n)` rather than a
//! fresh `O(n log n)` sort — the tree produced is identical, because the
//! greedy rule only consults orderings, which distribution preserves.
//!
//! §2.4 of the paper proves this greedy rule can be trapped: on the
//! shifted-grid dataset it always prefers vertical cuts, producing
//! column-aligned leaves that a horizontal line query must all visit.

use crate::bulk::BulkLoader;
use crate::entry::Entry;
use crate::page::NodePage;
use crate::params::TreeParams;
use crate::tree::RTree;
use crate::writer::page_ptr;
use pr_em::{BlockDevice, EmError};
use pr_geom::mapped::cmp_items_on_axis;
use pr_geom::{Axis, Item, Rect};
use std::collections::HashSet;
use std::sync::Arc;

/// The TGS bulk loader.
#[derive(Debug, Clone, Copy, Default)]
pub struct TgsLoader;

/// The working state of one subset: the same entries in all `2D`
/// coordinate orders (ascending by `(mapped coordinate, id)`).
struct Orders<const D: usize> {
    by_axis: Vec<Vec<Entry<D>>>,
}

impl<const D: usize> Orders<D> {
    fn build(entries: Vec<Entry<D>>) -> Self {
        let mut by_axis = Vec::with_capacity(2 * D);
        for axis in Axis::all::<D>() {
            let mut v = entries.clone();
            sort_by_axis(&mut v, axis);
            by_axis.push(v);
        }
        drop(entries);
        Orders { by_axis }
    }

    fn len(&self) -> usize {
        self.by_axis[0].len()
    }

    /// Splits along `axis` after the first `left_len` entries of that
    /// ordering, distributing every other ordering stably.
    fn split(self, axis: Axis, left_len: usize) -> (Orders<D>, Orders<D>) {
        let n = self.len();
        let mut left_ids: HashSet<u32> = HashSet::with_capacity(left_len);
        for e in &self.by_axis[axis.0][..left_len] {
            left_ids.insert(e.ptr);
        }
        let mut left = Vec::with_capacity(2 * D);
        let mut right = Vec::with_capacity(2 * D);
        for order in self.by_axis {
            let mut l = Vec::with_capacity(left_len);
            let mut r = Vec::with_capacity(n - left_len);
            for e in order {
                if left_ids.contains(&e.ptr) {
                    l.push(e);
                } else {
                    r.push(e);
                }
            }
            left.push(l);
            right.push(r);
        }
        (Orders { by_axis: left }, Orders { by_axis: right })
    }
}

fn sort_by_axis<const D: usize>(entries: &mut [Entry<D>], axis: Axis) {
    entries.sort_unstable_by(|a, b| {
        cmp_items_on_axis(
            axis,
            &Item {
                rect: a.rect,
                id: a.ptr,
            },
            &Item {
                rect: b.rect,
                id: b.ptr,
            },
        )
    });
}

/// The best binary cut found for one subset.
struct Cut {
    axis: Axis,
    /// Number of leading *items* (not units) going to the left side.
    left_len: usize,
    cost: f64,
}

/// Evaluates every (ordering, unit cut) pair and returns the greedy best.
fn best_cut<const D: usize>(orders: &Orders<D>, unit: usize) -> Cut {
    let n = orders.len();
    let m = n.div_ceil(unit);
    debug_assert!(m >= 2);
    let mut best = Cut {
        axis: Axis(0),
        left_len: unit,
        cost: f64::INFINITY,
    };
    for axis in Axis::all::<D>() {
        let sorted = &orders.by_axis[axis.0];
        // Bounding boxes of the m unit segments in this ordering.
        let seg_mbrs: Vec<Rect<D>> = sorted.chunks(unit).map(Entry::mbr).collect();
        // Prefix and suffix folds at segment boundaries.
        let mut prefix = Vec::with_capacity(m);
        let mut acc = Rect::EMPTY;
        for s in &seg_mbrs {
            acc = acc.mbr_with(s);
            prefix.push(acc);
        }
        let mut suffix = vec![Rect::EMPTY; m];
        let mut acc = Rect::EMPTY;
        for (i, s) in seg_mbrs.iter().enumerate().rev() {
            acc = acc.mbr_with(s);
            suffix[i] = acc;
        }
        for k in 1..m {
            let cost = prefix[k - 1].area() + suffix[k].area();
            if cost < best.cost {
                best = Cut {
                    axis,
                    left_len: (k * unit).min(n),
                    cost,
                };
            }
        }
    }
    best
}

/// Recursively binary-partitions `orders` into groups of at most `unit`.
fn partition<const D: usize>(orders: Orders<D>, unit: usize, out: &mut Vec<Vec<Entry<D>>>) {
    if orders.len() <= unit {
        out.push(orders.by_axis.into_iter().next().expect("2D ≥ 1 orders"));
        return;
    }
    let cut = best_cut(&orders, unit);
    let (left, right) = orders.split(cut.axis, cut.left_len);
    partition(left, unit, out);
    partition(right, unit, out);
}

/// Builds the subtree for `entries` whose root sits at `level`; returns
/// the root's entry (MBR + page id). Shared with the external loader's
/// memory-cutoff path.
pub(crate) fn build_node<const D: usize>(
    dev: &dyn BlockDevice,
    params: &TreeParams,
    entries: Vec<Entry<D>>,
    level: u8,
) -> Result<Entry<D>, EmError> {
    if level == 0 {
        debug_assert!(entries.len() <= params.leaf_cap);
        let mbr = Entry::mbr(&entries);
        let page = NodePage::new(0, entries).append(dev)?;
        return Ok(Entry::new(mbr, page_ptr(page)?));
    }
    let unit = subtree_capacity(params, level - 1);
    let mut groups = Vec::new();
    partition(Orders::build(entries), unit, &mut groups);
    debug_assert!(groups.len() <= params.node_cap);
    let mut children = Vec::with_capacity(groups.len());
    for g in groups {
        children.push(build_node(dev, params, g, level - 1)?);
    }
    let mbr = Entry::mbr(&children);
    let page = NodePage::new(level, children).append(dev)?;
    Ok(Entry::new(mbr, page_ptr(page)?))
}

/// Maximum items a subtree rooted at `level` can hold.
fn subtree_capacity(params: &TreeParams, level: u8) -> usize {
    let mut cap = params.leaf_cap;
    for _ in 0..level {
        cap = cap.saturating_mul(params.node_cap);
    }
    cap
}

impl<const D: usize> BulkLoader<D> for TgsLoader {
    fn name(&self) -> &'static str {
        "TGS"
    }

    fn load(
        &self,
        dev: Arc<dyn BlockDevice>,
        params: TreeParams,
        items: Vec<Item<D>>,
    ) -> Result<RTree<D>, EmError> {
        if items.is_empty() {
            return RTree::new_empty(dev, params);
        }
        let len = items.len() as u64;
        let entries: Vec<Entry<D>> = items.into_iter().map(Entry::from_item).collect();
        // Height: smallest h with leaf_cap · node_cap^(h-1) ≥ n.
        let mut root_level: u8 = 0;
        while subtree_capacity(&params, root_level) < entries.len() {
            root_level += 1;
        }
        let root_entry = build_node(dev.as_ref(), &params, entries, root_level)?;
        Ok(RTree::attach(
            dev,
            params,
            root_entry.ptr as u64,
            root_level,
            len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::brute_force_window;
    use pr_em::MemDevice;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                Item::new(Rect::xyxy(x, y, x + 1.0, y + 1.0), i)
            })
            .collect()
    }

    fn build(items: Vec<Item<2>>, cap: usize) -> RTree<2> {
        let params = TreeParams::with_cap::<2>(cap);
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        TgsLoader.load(dev, params, items).unwrap()
    }

    #[test]
    fn builds_valid_trees() {
        for n in [1u32, 8, 9, 65, 700, 2000] {
            let t = build(random_items(n, n as u64), 8);
            t.validate().unwrap().assert_ok();
            assert_eq!(t.len(), n as u64);
        }
    }

    #[test]
    fn queries_match_brute_force() {
        let items = random_items(1500, 13);
        let t = build(items.clone(), 16);
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..40 {
            let x: f64 = rng.gen_range(0.0..95.0);
            let y: f64 = rng.gen_range(0.0..95.0);
            let q = Rect::xyxy(x, y, x + 6.0, y + 2.0);
            let mut got = t.window(&q).unwrap();
            let mut want = brute_force_window(&items, &q);
            got.sort_by_key(|i| i.id);
            want.sort_by_key(|i| i.id);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn greedy_cut_prefers_obvious_gap() {
        // Two clusters far apart in x: the best cut must separate them.
        let mut items: Vec<Item<2>> = Vec::new();
        for i in 0..8u32 {
            let x = if i < 4 { i as f64 } else { 100.0 + i as f64 };
            items.push(Item::new(Rect::xyxy(x, 0.0, x + 0.5, 1.0), i));
        }
        let entries: Vec<Entry<2>> = items.iter().map(|&i| Entry::from_item(i)).collect();
        let orders = Orders::build(entries);
        let cut = best_cut(&orders, 4);
        assert_eq!(cut.left_len, 4);
        assert_eq!(cut.axis.dim::<2>(), 0, "cut along x");
        // And the split really separates the clusters.
        let (l, r) = orders.split(cut.axis, cut.left_len);
        assert!(l.by_axis[0].iter().all(|e| e.rect.lo_at(0) < 50.0));
        assert!(r.by_axis[0].iter().all(|e| e.rect.lo_at(0) > 50.0));
    }

    #[test]
    fn orders_split_preserves_each_ordering() {
        let entries: Vec<Entry<2>> = random_items(200, 5)
            .into_iter()
            .map(Entry::from_item)
            .collect();
        let orders = Orders::build(entries);
        let (l, r) = orders.split(Axis(1), 80);
        for (part, expect_len) in [(&l, 80usize), (&r, 120usize)] {
            for (a, order) in part.by_axis.iter().enumerate() {
                assert_eq!(order.len(), expect_len);
                let axis = Axis(a);
                for w in order.windows(2) {
                    let ia = Item {
                        rect: w[0].rect,
                        id: w[0].ptr,
                    };
                    let ib = Item {
                        rect: w[1].rect,
                        id: w[1].ptr,
                    };
                    assert_ne!(
                        cmp_items_on_axis(axis, &ia, &ib),
                        std::cmp::Ordering::Greater,
                        "ordering {a} broken after split"
                    );
                }
            }
        }
    }

    #[test]
    fn node_sizes_respect_unit_rounding() {
        let t = build(random_items(700, 7), 8);
        let s = t.stats().unwrap();
        assert_eq!(s.entries_per_level[0], 700);
        for (level, &n) in s.nodes_per_level.iter().enumerate() {
            assert!(n > 0, "level {level} empty");
        }
    }

    #[test]
    fn tgs_beats_random_order_on_area() {
        // Sanity: TGS leaves should have far smaller total MBR area than
        // leaves packed in input (random) order.
        let items = random_items(1000, 3);
        let tgs = build(items.clone(), 10);
        let dev: Arc<dyn BlockDevice> =
            Arc::new(MemDevice::new(TreeParams::with_cap::<2>(10).page_size));
        let naive = crate::writer::build_packed(
            dev,
            TreeParams::with_cap::<2>(10),
            &items
                .iter()
                .map(|&i| Entry::from_item(i))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let leaf_area = |t: &RTree<2>| -> f64 {
            let mut total = 0.0;
            let mut stack = vec![t.root()];
            while let Some(p) = stack.pop() {
                let (node, _) = t.read_node(p).unwrap();
                if node.is_leaf() {
                    total += node.mbr().area();
                } else {
                    for e in &node.entries {
                        stack.push(e.ptr as u64);
                    }
                }
            }
            total
        };
        assert!(leaf_area(&tgs) * 5.0 < leaf_area(&naive));
    }
}
