//! Workload generators for the PR-tree experiments (§3.2 of the paper).
//!
//! Every generator is deterministic in its seed, so experiments are
//! reproducible bit-for-bit. The datasets:
//!
//! * [`synthetic::uniform_points`] — uniform point rectangles.
//! * [`synthetic::size_dataset`] — SIZE(max_side): uniform centers,
//!   independently uniform side lengths; probes sensitivity to rectangle
//!   *size*.
//! * [`synthetic::aspect_dataset`] — ASPECT(a): fixed-area rectangles of
//!   aspect ratio `a`; probes sensitivity to *elongation*.
//! * [`synthetic::skewed_dataset`] — SKEWED(c): uniform points squeezed
//!   by `y ↦ y^c`; probes sensitivity to coordinate distribution.
//! * [`synthetic::cluster_dataset`] — CLUSTER: thousands of tight point
//!   clusters on a horizontal line; the paper's worst-case-style stress
//!   test (Table 1).
//! * [`worst_case::worst_case_grid`] — the Theorem-3 shifted grid
//!   (Halton–Hammersley columns) on which H, H4 and TGS all visit
//!   `Θ(N/B)` leaves for an empty query.
//! * [`tiger::TigerProfile`] — TIGER/Line-like road networks (see
//!   DESIGN.md §5 for the substitution rationale).
//! * [`queries`] — the matching query workloads (squares by area
//!   fraction, skew-transformed squares, CLUSTER strips, Theorem-3
//!   lines).

pub mod queries;
pub mod synthetic;
pub mod tiger;
pub mod worst_case;

pub use synthetic::{
    aspect_dataset, cluster_dataset, size_dataset, skewed_dataset, uniform_points,
};
pub use tiger::TigerProfile;
pub use worst_case::worst_case_grid;
