//! TIGER/Line-like road network generator.
//!
//! The paper benchmarks on bounding boxes of road segments from the US
//! Census TIGER/Line 1997 CD-ROMs — 16.7M segments for sixteen eastern
//! states ("Eastern"), 12M for five western states ("Western"). We do not
//! have the CDs; DESIGN.md §5 documents the substitution. What the
//! paper's analysis actually relies on is distributional (§3.2): the
//! input consists of *relatively small rectangles* (long roads are cut
//! into short segments) that are *somewhat but not too badly clustered*
//! around urban areas.
//!
//! This generator reproduces those properties mechanically: a region
//! holds a set of urban centers with population weights; roads are
//! polylines grown by random walks with heading momentum — dense short
//! segments near centers, sparser longer segments in rural grid patterns
//! between them. Each emitted item is the bounding box of one segment.
//! Region boundaries tile the domain horizontally, so "the first r of 5
//! regions" reproduces the paper's nested Eastern subsets (Figs. 10/14).

use pr_geom::{Item, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A TIGER-like region profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TigerProfile {
    /// Number of regions ("states") tiling the domain horizontally.
    pub regions: u32,
    /// Urban centers per region.
    pub centers_per_region: u32,
    /// Fraction of segments that are urban (vs rural grid roads), in
    /// percent.
    pub urban_percent: u32,
    /// Base RNG seed; region `r` derives its own stream from it.
    pub seed: u64,
}

impl TigerProfile {
    /// The Eastern profile: more states, denser urban clustering.
    pub fn eastern() -> Self {
        TigerProfile {
            regions: 5, // the paper splits Eastern into 5 nested subsets
            centers_per_region: 12,
            urban_percent: 70,
            seed: 0xEA57,
        }
    }

    /// The Western profile: fewer, sparser population centers.
    pub fn western() -> Self {
        TigerProfile {
            regions: 5,
            centers_per_region: 5,
            urban_percent: 55,
            seed: 0x3357,
        }
    }

    /// Generates `n` road-segment bounding boxes spread over the first
    /// `use_regions` regions (ids are dense `0..n`).
    pub fn generate(&self, n: u32, use_regions: u32) -> Vec<Item<2>> {
        let use_regions = use_regions.clamp(1, self.regions);
        let per_region = n / use_regions;
        let mut out = Vec::with_capacity(n as usize);
        for r in 0..use_regions {
            let count = if r == use_regions - 1 {
                n - per_region * (use_regions - 1)
            } else {
                per_region
            };
            self.generate_region(r, count, &mut out);
        }
        // Re-id densely after concatenation.
        for (id, item) in out.iter_mut().enumerate() {
            item.id = id as u32;
        }
        out
    }

    /// The horizontal strip `[r/regions, (r+1)/regions] × [0, 1]`.
    fn region_domain(&self, r: u32) -> Rect<2> {
        let w = 1.0 / self.regions as f64;
        Rect::xyxy(r as f64 * w, 0.0, (r as f64 + 1.0) * w, 1.0)
    }

    fn generate_region(&self, r: u32, count: u32, out: &mut Vec<Item<2>>) {
        let domain = self.region_domain(r);
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r as u64 + 1)),
        );
        // Urban centers with Zipf-ish weights.
        let centers: Vec<(f64, f64, f64)> = (0..self.centers_per_region)
            .map(|i| {
                let cx = rng.gen_range(domain.lo_at(0)..domain.hi_at(0));
                let cy = rng.gen_range(0.05..0.95);
                let weight = 1.0 / (i as f64 + 1.0);
                (cx, cy, weight)
            })
            .collect();
        let total_weight: f64 = centers.iter().map(|c| c.2).sum();

        let mut emitted = 0u32;
        while emitted < count {
            let urban = rng.gen_range(0..100) < self.urban_percent;
            let (sx, sy, seg_len, spread) = if urban {
                // Pick a center by weight; start near it.
                let mut pick = rng.gen_range(0.0..total_weight);
                let mut chosen = centers[0];
                for c in &centers {
                    if pick < c.2 {
                        chosen = *c;
                        break;
                    }
                    pick -= c.2;
                }
                let spread = 0.02 / self.regions as f64 * 3.0;
                let sx = chosen.0 + gaussianish(&mut rng) * spread;
                let sy = chosen.1 + gaussianish(&mut rng) * spread;
                (sx, sy, 0.0004, spread)
            } else {
                // Rural: anywhere in the region, longer segments.
                let sx = rng.gen_range(domain.lo_at(0)..domain.hi_at(0));
                let sy = rng.gen_range(0.0..1.0);
                (sx, sy, 0.0015, 0.05)
            };
            let _ = spread;

            // Grow one road: a random walk with heading momentum. Urban
            // roads twist; rural roads run straight (often axis-aligned).
            let mut heading: f64 = if urban || rng.gen_bool(0.3) {
                rng.gen_range(0.0..std::f64::consts::TAU)
            } else {
                // Grid-aligned rural road.
                f64::from(rng.gen_range(0u8..4)) * std::f64::consts::FRAC_PI_2
            };
            let road_segments = rng.gen_range(5..40).min(count - emitted);
            // Roads stay inside their state: clamp the walk to the region
            // strip so nested region prefixes cover prefix strips.
            let (x_lo, x_hi) = (domain.lo_at(0), domain.hi_at(0));
            let (mut x, mut y) = (sx.clamp(x_lo, x_hi), sy.clamp(0.0, 1.0));
            for _ in 0..road_segments {
                let len = seg_len * rng.gen_range(0.4..1.6);
                heading += gaussianish(&mut rng) * if urban { 0.5 } else { 0.08 };
                let nx = (x + heading.cos() * len).clamp(x_lo, x_hi);
                let ny = (y + heading.sin() * len).clamp(0.0, 1.0);
                let rect = Rect::xyxy(x.min(nx), y.min(ny), x.max(nx), y.max(ny));
                out.push(Item::new(rect, 0)); // re-id'ed by the caller
                emitted += 1;
                x = nx;
                y = ny;
                if emitted == count {
                    break;
                }
            }
        }
    }
}

/// Cheap approximately-normal variate (Irwin–Hall with 4 uniforms),
/// mean 0, spread ≈ 1.
fn gaussianish(rng: &mut SmallRng) -> f64 {
    let s: f64 = (0..4).map(|_| rng.gen_range(-1.0..1.0f64)).sum();
    s * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_count_with_dense_ids() {
        for profile in [TigerProfile::eastern(), TigerProfile::western()] {
            let items = profile.generate(10_000, profile.regions);
            assert_eq!(items.len(), 10_000);
            for (i, it) in items.iter().enumerate() {
                assert_eq!(it.id, i as u32);
                assert!(it.rect.is_valid());
            }
        }
    }

    #[test]
    fn segments_are_small() {
        // The paper: "relatively small rectangles (long roads are divided
        // into short segments)".
        let items = TigerProfile::eastern().generate(20_000, 5);
        let avg_diag: f64 = items
            .iter()
            .map(|i| (i.rect.extent(0).powi(2) + i.rect.extent(1).powi(2)).sqrt())
            .sum::<f64>()
            / items.len() as f64;
        assert!(avg_diag < 0.01, "avg segment diagonal {avg_diag} too large");
        assert!(items.iter().all(|i| i.rect.extent(0) < 0.05));
    }

    #[test]
    fn data_is_clustered_but_not_degenerate() {
        // Urban clustering: the densest 4% of a 25×25 grid holds well
        // over its uniform share of segment centers, but not everything.
        let items = TigerProfile::eastern().generate(30_000, 5);
        let mut grid = vec![0u32; 25 * 25];
        for i in &items {
            let c = i.rect.center();
            let gx = ((c.coord(0) * 25.0) as usize).min(24);
            let gy = ((c.coord(1) * 25.0) as usize).min(24);
            grid[gy * 25 + gx] += 1;
        }
        let mut counts = grid.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top25: u32 = counts[..25].iter().sum();
        let share = top25 as f64 / items.len() as f64;
        assert!(share > 0.15, "too uniform: top cells hold {share:.3}");
        assert!(share < 0.95, "too degenerate: top cells hold {share:.3}");
    }

    #[test]
    fn nested_subsets_grow() {
        let p = TigerProfile::eastern();
        // Region prefixes reproduce the paper's nested Eastern subsets:
        // the first r regions cover a prefix strip of the domain.
        let sub2 = p.generate(4_000, 2);
        let max_x = sub2
            .iter()
            .map(|i| i.rect.hi_at(0))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_x <= 2.0 / 5.0 + 1e-9, "2 regions stay in 2/5 strip");
        let full = p.generate(4_000, 5);
        let max_x_full = full
            .iter()
            .map(|i| i.rect.hi_at(0))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_x_full > 0.75, "5 regions span the domain");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TigerProfile::western().generate(5_000, 5);
        let b = TigerProfile::western().generate(5_000, 5);
        assert_eq!(a, b);
        let mut other = TigerProfile::western();
        other.seed ^= 1;
        assert_ne!(other.generate(5_000, 5), a);
    }
}
