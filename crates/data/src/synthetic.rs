//! The paper's synthetic dataset families (§3.2).

use pr_geom::{Item, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniformly distributed points in the unit square (as degenerate
/// rectangles). The baseline "nice" dataset.
pub fn uniform_points(n: u32, seed: u64) -> Vec<Item<2>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            Item::new(Rect::xyxy(x, y, x, y), id)
        })
        .collect()
}

/// SIZE(max_side): rectangle centers uniform in the unit square, side
/// lengths uniform and independent in `(0, max_side)`; rectangles not
/// completely inside the unit square are rejected and regenerated (the
/// paper "discarded rectangles that were not completely inside the unit
/// square (but made sure each dataset had 10 million rectangles)").
pub fn size_dataset(n: u32, max_side: f64, seed: u64) -> Vec<Item<2>> {
    assert!(
        max_side > 0.0 && max_side < 1.0,
        "max_side must be in (0,1)"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n as usize);
    let mut id = 0u32;
    while out.len() < n as usize {
        let cx: f64 = rng.gen_range(0.0..1.0);
        let cy: f64 = rng.gen_range(0.0..1.0);
        let w: f64 = rng.gen_range(0.0..max_side);
        let h: f64 = rng.gen_range(0.0..max_side);
        let r = Rect::xyxy(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0);
        if r.lo_at(0) >= 0.0 && r.lo_at(1) >= 0.0 && r.hi_at(0) <= 1.0 && r.hi_at(1) <= 1.0 {
            out.push(Item::new(r, id));
            id += 1;
        }
    }
    out
}

/// ASPECT(a): rectangles of fixed area `10⁻⁶` and aspect ratio `a`, the
/// long side horizontal or vertical with equal probability, centers
/// uniform, all inside the unit square.
pub fn aspect_dataset(n: u32, aspect: f64, seed: u64) -> Vec<Item<2>> {
    aspect_dataset_with_area(n, aspect, 1e-6, seed)
}

/// ASPECT with an explicit area (the paper fixes `10⁻⁶`).
pub fn aspect_dataset_with_area(n: u32, aspect: f64, area: f64, seed: u64) -> Vec<Item<2>> {
    assert!(aspect >= 1.0, "aspect ratio must be ≥ 1");
    assert!(area > 0.0);
    let long = (area * aspect).sqrt();
    let short = (area / aspect).sqrt();
    assert!(long < 1.0, "rectangles must fit in the unit square");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n as usize);
    let mut id = 0u32;
    while out.len() < n as usize {
        let horizontal: bool = rng.gen();
        let (w, h) = if horizontal {
            (long, short)
        } else {
            (short, long)
        };
        let cx: f64 = rng.gen_range(w / 2.0..1.0 - w / 2.0);
        let cy: f64 = rng.gen_range(h / 2.0..1.0 - h / 2.0);
        out.push(Item::new(
            Rect::xyxy(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0),
            id,
        ));
        id += 1;
    }
    out
}

/// SKEWED(c): uniform points squeezed in y — each `(x, y)` becomes
/// `(x, y^c)`. `c = 1` is uniform; larger `c` piles mass near `y = 0`.
pub fn skewed_dataset(n: u32, c: u32, seed: u64) -> Vec<Item<2>> {
    assert!(c >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let yc = y.powi(c as i32);
            Item::new(Rect::xyxy(x, yc, x, yc), id)
        })
        .collect()
}

/// CLUSTER: `clusters` point clusters with centers equally spaced on a
/// horizontal line through the middle of the unit square, each holding
/// `per_cluster` points uniform in a `side × side` box (the paper: 10,000
/// clusters × 1,000 points in 0.00001 × 0.00001 squares).
pub fn cluster_dataset(clusters: u32, per_cluster: u32, side: f64, seed: u64) -> Vec<Item<2>> {
    assert!(clusters >= 1 && per_cluster >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity((clusters * per_cluster) as usize);
    let mut id = 0u32;
    for ci in 0..clusters {
        // Centers at (ci + 0.5) / clusters, vertically centered.
        let cx = (ci as f64 + 0.5) / clusters as f64;
        let cy = 0.5;
        for _ in 0..per_cluster {
            let x = cx + rng.gen_range(-side / 2.0..side / 2.0);
            let y = cy + rng.gen_range(-side / 2.0..side / 2.0);
            out.push(Item::new(Rect::xyxy(x, y, x, y), id));
            id += 1;
        }
    }
    out
}

/// The paper's CLUSTER parameters scaled by `scale ∈ (0, 1]`: at scale 1
/// this is 10,000 clusters × 1,000 points.
pub fn cluster_dataset_scaled(scale: f64, seed: u64) -> Vec<Item<2>> {
    let clusters = ((10_000.0 * scale.sqrt()).round() as u32).max(10);
    let per_cluster = ((1_000.0 * scale.sqrt()).round() as u32).max(10);
    cluster_dataset(clusters, per_cluster, 1e-5, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_are_degenerate_and_inside() {
        let items = uniform_points(1000, 1);
        assert_eq!(items.len(), 1000);
        for i in &items {
            assert_eq!(i.rect.area(), 0.0);
            assert!(i.rect.lo_at(0) >= 0.0 && i.rect.hi_at(0) <= 1.0);
        }
        // Determinism.
        assert_eq!(uniform_points(1000, 1), items);
        assert_ne!(uniform_points(1000, 2), items);
    }

    #[test]
    fn size_dataset_respects_bounds() {
        let items = size_dataset(2000, 0.05, 3);
        assert_eq!(items.len(), 2000);
        for i in &items {
            assert!(i.rect.extent(0) <= 0.05 && i.rect.extent(1) <= 0.05);
            assert!(i.rect.lo_at(0) >= 0.0 && i.rect.hi_at(0) <= 1.0);
            assert!(i.rect.lo_at(1) >= 0.0 && i.rect.hi_at(1) <= 1.0);
        }
        // ids are dense 0..n.
        let mut ids: Vec<u32> = items.iter().map(|i| i.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn size_dataset_large_rectangles_still_complete() {
        // High rejection rate (max_side 0.5) must still deliver n items.
        let items = size_dataset(500, 0.5, 9);
        assert_eq!(items.len(), 500);
    }

    #[test]
    fn aspect_dataset_fixes_area_and_ratio() {
        for a in [1.0, 10.0, 100.0, 1000.0] {
            let items = aspect_dataset(300, a, 4);
            let mut horizontals = 0;
            for i in &items {
                assert!((i.rect.area() - 1e-6).abs() < 1e-12, "area fixed");
                let ratio = i.rect.aspect_ratio();
                assert!((ratio - a).abs() / a < 1e-9, "ratio {ratio} ≠ {a}");
                if i.rect.extent(0) >= i.rect.extent(1) {
                    horizontals += 1;
                }
            }
            if a > 1.0 {
                // Orientation is a fair coin.
                assert!(horizontals > 75 && horizontals < 225);
            }
        }
    }

    #[test]
    fn skewed_dataset_squeezes_downward() {
        let uni = skewed_dataset(5000, 1, 5);
        let ske = skewed_dataset(5000, 5, 5);
        let median_y = |v: &[Item<2>]| {
            let mut ys: Vec<f64> = v.iter().map(|i| i.rect.lo_at(1)).collect();
            ys.sort_by(f64::total_cmp);
            ys[ys.len() / 2]
        };
        assert!((median_y(&uni) - 0.5).abs() < 0.05);
        // y^5 median should be near 0.5^5 ≈ 0.031.
        assert!(median_y(&ske) < 0.06);
        // x stays uniform.
        let mean_x: f64 = ske.iter().map(|i| i.rect.lo_at(0)).sum::<f64>() / ske.len() as f64;
        assert!((mean_x - 0.5).abs() < 0.02);
    }

    #[test]
    fn cluster_dataset_shape() {
        let items = cluster_dataset(100, 50, 1e-5, 6);
        assert_eq!(items.len(), 5000);
        // All points hug the horizontal center line.
        for i in &items {
            assert!((i.rect.lo_at(1) - 0.5).abs() < 1e-5);
        }
        // Points in cluster 0 are tightly packed horizontally.
        let xs: Vec<f64> = items[..50].iter().map(|i| i.rect.lo_at(0)).collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min <= 1e-5);
    }

    #[test]
    fn cluster_scaled_matches_paper_at_full_scale() {
        let items = cluster_dataset_scaled(0.0001, 7);
        assert!(!items.is_empty());
        // Full scale would be 10M points; just check the formula.
        let tiny = cluster_dataset_scaled(0.01, 7);
        assert_eq!(tiny.len(), 1000 * 100);
    }
}
