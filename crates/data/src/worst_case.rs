//! The Theorem-3 worst-case dataset (§2.4, Figure 3).
//!
//! A grid of `N/B` columns and `B` rows where column `i` is shifted up by
//! `h(i)/N`, with `h(i)` the bit-reversal of `i` (each row is a
//! Halton–Hammersley point set):
//!
//! ```text
//! p_ij = ( i + 1/2 ,  j/B + h(i)/N )     i < N/B,  j < B
//! ```
//!
//! On this set a packed Hilbert R-tree, a 4-D Hilbert R-tree and a TGS
//! R-tree all put each *column* in its own leaf, so a horizontal line
//! query that threads between the points visits all `Θ(N/B)` leaves
//! while reporting nothing. The PR-tree visits `O(√(N/B))`.

use pr_geom::{Item, Rect};

/// Builds the shifted grid with `2^k` columns of `b` rows (`N = 2^k·b`).
///
/// # Panics
/// Panics if `k > 31` or the point count overflows `u32` ids.
pub fn worst_case_grid(k: u32, b: u32) -> Vec<Item<2>> {
    assert!((1..=31).contains(&k), "k must be in 1..=31");
    let columns: u64 = 1 << k;
    let n: u64 = columns * b as u64;
    assert!(n <= u32::MAX as u64, "too many points for u32 ids");
    let mut out = Vec::with_capacity(n as usize);
    let mut id = 0u32;
    for i in 0..columns {
        let x = i as f64 + 0.5;
        let h = bit_reverse(i as u32, k) as f64;
        for j in 0..b {
            let y = j as f64 / b as f64 + h / n as f64;
            out.push(Item::new(Rect::xyxy(x, y, x, y), id));
            id += 1;
        }
    }
    out
}

/// Reverses the low `k` bits of `i`.
pub fn bit_reverse(i: u32, k: u32) -> u32 {
    debug_assert!((1..=32).contains(&k));
    debug_assert!(k == 32 || i < (1 << k));
    i.reverse_bits() >> (32 - k)
}

/// A horizontal line query (degenerate rectangle) through the grid that
/// touches no point: it runs at `y = 1/2 + 1/(2N)`, strictly between any
/// two point ordinates, spanning every column.
pub fn worst_case_line_query(k: u32, b: u32) -> Rect<2> {
    let columns: u64 = 1 << k;
    let n = (columns * b as u64) as f64;
    // Row j = b/2 starts at y = 1/2; shifts are multiples of 1/N, so the
    // half-step 1/(2N) lands strictly between consecutive shift values.
    let y = 0.5 + 0.5 / n;
    Rect::xyxy(0.0, y, columns as f64, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reversal_basics() {
        assert_eq!(bit_reverse(0b000, 3), 0b000);
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b011, 3), 0b110);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        // Involution.
        for i in 0..64u32 {
            assert_eq!(bit_reverse(bit_reverse(i, 6), 6), i);
        }
    }

    #[test]
    fn grid_dimensions_and_coordinates() {
        let k = 4;
        let b = 4;
        let items = worst_case_grid(k, b);
        assert_eq!(items.len(), (1 << k) * b as usize);
        let n = items.len() as f64;
        for (idx, it) in items.iter().enumerate() {
            let i = idx / b as usize;
            let j = idx % b as usize;
            assert_eq!(it.rect.lo_at(0), i as f64 + 0.5);
            let y = it.rect.lo_at(1);
            let base = j as f64 / b as f64;
            assert!(y >= base && y < base + 1.0 / b as f64, "row band");
            let shift = y - base;
            let steps = shift * n;
            assert!((steps - steps.round()).abs() < 1e-9, "shift is k·(1/N)");
        }
    }

    #[test]
    fn columns_have_distinct_shifts() {
        let items = worst_case_grid(5, 4);
        let b = 4usize;
        let mut shifts: Vec<f64> = (0..32)
            .map(|i| items[i * b].rect.lo_at(1)) // row 0 of each column
            .collect();
        shifts.sort_by(f64::total_cmp);
        for w in shifts.windows(2) {
            assert!(w[1] > w[0], "all column shifts distinct");
        }
    }

    #[test]
    fn line_query_reports_nothing_but_crosses_all_columns() {
        let (k, b) = (6, 8);
        let items = worst_case_grid(k, b);
        let q = worst_case_line_query(k, b);
        // No point on the line.
        assert!(
            items.iter().all(|i| !i.rect.intersects(&q)),
            "query must have empty output"
        );
        // But every column's bounding box crosses it.
        let cols = 1usize << k;
        for c in 0..cols {
            let col_mbr = pr_geom::Rect::mbr_of(
                items[c * b as usize..(c + 1) * b as usize]
                    .iter()
                    .map(|i| &i.rect),
            );
            assert!(col_mbr.intersects(&q), "column {c} must straddle the line");
        }
    }
}
