//! Query workload generators (§3.3).
//!
//! The paper evaluates with batches of 100 random queries and reports
//! the average; each generator here returns such a batch,
//! deterministically from a seed.

use pr_geom::{Item, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Square windows covering `area_fraction` of `domain`'s area, centers
/// uniform, squares clipped to stay inside the domain (the paper's
/// queries of 0.25%–2% of the bounding-box area, Figs. 12–14).
pub fn square_queries(
    domain: &Rect<2>,
    area_fraction: f64,
    count: usize,
    seed: u64,
) -> Vec<Rect<2>> {
    assert!(area_fraction > 0.0 && area_fraction <= 1.0);
    let side = (domain.area() * area_fraction).sqrt();
    let side_x = side.min(domain.extent(0));
    let side_y = side.min(domain.extent(1));
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x0 = if domain.extent(0) > side_x {
                rng.gen_range(domain.lo_at(0)..domain.hi_at(0) - side_x)
            } else {
                domain.lo_at(0)
            };
            let y0 = if domain.extent(1) > side_y {
                rng.gen_range(domain.lo_at(1)..domain.hi_at(1) - side_y)
            } else {
                domain.lo_at(1)
            };
            Rect::xyxy(x0, y0, x0 + side_x, y0 + side_y)
        })
        .collect()
}

/// SKEWED(c) queries: squares of `area_fraction` of the unit square,
/// skewed like the data — each corner `(x, y)` maps to `(x, y^c)` — so
/// output sizes stay comparable across `c` (Fig. 15 right).
pub fn skewed_queries(c: u32, area_fraction: f64, count: usize, seed: u64) -> Vec<Rect<2>> {
    assert!(c >= 1);
    let side = area_fraction.sqrt();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x0 = rng.gen_range(0.0..1.0 - side);
            let y0 = rng.gen_range(0.0..1.0 - side);
            let y1 = y0 + side;
            Rect::xyxy(x0, y0.powi(c as i32), x0 + side, y1.powi(c as i32))
        })
        .collect()
}

/// CLUSTER strip queries (Table 1): long skinny horizontal rectangles of
/// area `1 × 10⁻⁷` spanning the full cluster line, the bottom-left
/// y-coordinate random such that the strip passes through all clusters.
///
/// `cluster_side` is the side of the cluster squares (`10⁻⁵` in the
/// paper), matching [`crate::synthetic::cluster_dataset`]'s geometry
/// (clusters centered on `y = 0.5`).
pub fn cluster_strip_queries(cluster_side: f64, count: usize, seed: u64) -> Vec<Rect<2>> {
    let height = 1e-7; // width 1 × height 1e-7 = the paper's area
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let y0 = rng.gen_range(0.5 - cluster_side / 2.0..0.5 + cluster_side / 2.0 - height);
            Rect::xyxy(0.0, y0, 1.0, y0 + height)
        })
        .collect()
}

/// Average `(results, leaves_visited, relative_cost)` helpers usually
/// live in the bench crate; this helper answers "how many items does a
/// batch hit" for workload calibration in tests.
pub fn total_hits(items: &[Item<2>], queries: &[Rect<2>]) -> u64 {
    queries
        .iter()
        .map(|q| items.iter().filter(|i| i.rect.intersects(q)).count() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{cluster_dataset, skewed_dataset, uniform_points};

    #[test]
    fn square_queries_have_requested_area_and_fit() {
        let domain = Rect::xyxy(0.0, 0.0, 2.0, 2.0);
        let qs = square_queries(&domain, 0.01, 50, 1);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert!((q.area() - 0.04).abs() < 1e-9, "1% of area 4");
            assert!(domain.contains_rect(q));
        }
        // Deterministic.
        assert_eq!(square_queries(&domain, 0.01, 50, 1), qs);
    }

    #[test]
    fn square_queries_hit_expected_fraction_of_uniform_points() {
        let items = uniform_points(20_000, 3);
        let domain = Rect::xyxy(0.0, 0.0, 1.0, 1.0);
        let qs = square_queries(&domain, 0.01, 40, 2);
        let hits = total_hits(&items, &qs) as f64 / qs.len() as f64;
        // Expect ≈ 200 per query (1% of 20k); allow wide tolerance.
        assert!(hits > 100.0 && hits < 400.0, "avg hits {hits}");
    }

    #[test]
    fn skewed_queries_keep_output_size_stable() {
        let per_c: Vec<f64> = [1u32, 5, 9]
            .iter()
            .map(|&c| {
                let items = skewed_dataset(20_000, c, 4);
                let qs = skewed_queries(c, 0.01, 30, 5);
                total_hits(&items, &qs) as f64 / qs.len() as f64
            })
            .collect();
        // The paper skews queries precisely so T stays comparable.
        for &h in &per_c {
            assert!(h > 50.0, "avg hits {h} too small");
        }
        let max = per_c.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_c.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 4.0, "output sizes diverge: {per_c:?}");
    }

    #[test]
    fn cluster_strips_cross_all_clusters() {
        let items = cluster_dataset(50, 40, 1e-5, 6);
        let qs = cluster_strip_queries(1e-5, 20, 7);
        for q in &qs {
            assert!((q.area() - 1e-7).abs() < 1e-12);
            // The strip must geometrically cross every cluster's x-range:
            // it spans x ∈ [0,1] and sits inside the cluster y-band.
            assert!(q.lo_at(1) > 0.5 - 1e-5 && q.hi_at(1) < 0.5 + 1e-5);
        }
        // On average a strip hits some but far from all points.
        let hits = total_hits(&items, &qs) as f64 / qs.len() as f64;
        assert!(hits < items.len() as f64 * 0.2, "strips are thin: {hits}");
    }
}
