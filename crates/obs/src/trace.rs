//! Sampling span tracer: per-operation phase timelines across the
//! whole stack (em → tree → store → live).
//!
//! Metrics (the [`crate::registry`]) answer *how much in aggregate*;
//! the event ring answers *when, in what order*. This module answers
//! the remaining question — *where did this one operation spend its
//! time* — by recording a bounded list of timestamped [`Span`]s (and,
//! for queries, per-level traversal counters) into a [`SpanCtx`] that
//! rides the operation itself: a query's `QueryScratch`, a writer's
//! stack frame through group commit, a merge worker's loop.
//!
//! # Sampling & overhead contract
//!
//! Tracing is off by default. The entire hot-path cost while disabled
//! is **one relaxed atomic load** ([`enabled()`]) — the same contract
//! as the registry's recording switch and the fault layer's disarmed
//! probe, and gated the same way (≤5%) in the `hot_query` bench, which
//! compares tracing-disabled against tracing-armed-but-never-sampling
//! with interleaved iterations.
//!
//! [`set_sampling(n)`](set_sampling) arms the tracer at a 1-in-`n`
//! sampling rate (`0` disables, `1` traces everything). Sampling is
//! decided once per operation ([`SpanCtx::sampled`]) by a shared
//! relaxed counter, so the per-operation cost while armed is one load
//! plus (1/n of the time) one heap allocation; the per-span cost inside
//! a sampled operation is two `Instant` reads and a `Vec` push.
//!
//! # Flight recorder & retention policy
//!
//! Completed traces are published ([`SpanCtx::finish_publish`]) to the
//! process-wide [`FlightRecorder`], which keeps the **N slowest traces
//! per op-kind** (default 8), admitting only traces at least as slow as
//! the configured threshold ([`configure_recorder`]; default 0 µs =
//! keep the slowest N regardless). Within a kind the list is sorted
//! slowest-first and the fastest retained trace is evicted on overflow,
//! so the recorder is a bounded reservoir whose contents converge on
//! "the worst operations this process has seen". `prtree slow` and
//! `stats --json` dump it; nothing is ever written unless the tracer is
//! armed.
//!
//! # Consumers
//!
//! * `prtree query/knn --explain` — installs a [`Collector`], forces a
//!   trace on one query, and prints the per-level profile (cross-checked
//!   exactly against `QueryStats`).
//! * `prtree slow [--json]` / `stats --json` — the flight recorder.
//! * `prtree trace` / `ingest --trace-file` — [`chrome_trace_json`],
//!   a Chrome-trace-event JSON export that opens in `about://tracing`
//!   or Perfetto.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{JsonArr, JsonObj};

// ---------------------------------------------------------------------------
// Sampling switch
// ---------------------------------------------------------------------------

/// Whether the tracer is armed at all. One relaxed load on every hot
/// path; false means nothing below this line runs.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Trace 1 in `SAMPLE_EVERY` operations (only meaningful while armed).
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
/// Shared operation counter driving the 1-in-n decision.
static TICK: AtomicU64 = AtomicU64::new(0);

/// True when the tracer is armed (some operations may be sampled).
/// This is the one relaxed atomic load the disabled hot path pays.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms the tracer at a 1-in-`every` sampling rate. `0` disables
/// tracing entirely; `1` traces every operation.
pub fn set_sampling(every: u64) {
    SAMPLE_EVERY.store(every, Ordering::Relaxed);
    ENABLED.store(every != 0, Ordering::Relaxed);
}

/// Current sampling rate (0 = disabled).
pub fn sampling() -> u64 {
    if enabled() {
        SAMPLE_EVERY.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// One relaxed load when disabled; when armed, one fetch-add deciding
/// whether this operation is the 1-in-n sample.
#[inline]
fn should_sample() -> bool {
    if !enabled() {
        return false;
    }
    let every = SAMPLE_EVERY.load(Ordering::Relaxed).max(1);
    TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(every)
}

// ---------------------------------------------------------------------------
// Trace data model
// ---------------------------------------------------------------------------

/// One timestamped phase inside a trace. `start_us`/`dur_us` are
/// offsets from the trace's start, in microseconds.
#[derive(Clone, Debug)]
pub struct Span {
    /// Which layer emitted the span: `"em"`, `"tree"`, `"store"`,
    /// `"live"`.
    pub layer: &'static str,
    /// Phase name (`"fsync"`, `"bulk_load"`, `"page_read"`, …).
    pub name: &'static str,
    /// Microseconds from the trace's start.
    pub start_us: u64,
    /// Span length in microseconds (0 for instantaneous notes).
    pub dur_us: u64,
    /// Short free-form payload (`"slot=3 items=4096"`).
    pub detail: String,
}

/// Per-tree-level traversal counters for a query trace (index 0 =
/// leaf level, matching node levels on disk).
#[derive(Clone, Debug, Default)]
pub struct LevelCounters {
    /// Nodes of this level visited (leaves + internal).
    pub nodes: u64,
    /// Leaf nodes visited.
    pub leaves: u64,
    /// Internal nodes visited.
    pub internal: u64,
    /// Transcoded-leaf-cache hits while visiting this level.
    pub cache_hits: u64,
    /// Transcoded-leaf-cache misses while visiting this level.
    pub cache_misses: u64,
    /// Device page reads performed while visiting this level.
    pub device_reads: u64,
}

/// A completed trace: one operation's phase timeline.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Operation kind: `"window"`, `"knn"`, `"write"`, `"merge"`,
    /// `"compaction"`, `"wal_replay"`, ….
    pub kind: &'static str,
    /// Wall-clock start (ms since the unix epoch).
    pub unix_ms: u64,
    /// Total operation time in microseconds.
    pub total_us: u64,
    /// Short free-form payload (`"results=117"`).
    pub detail: String,
    /// Phase spans, in begin order.
    pub spans: Vec<Span>,
    /// Per-level traversal counters (queries only; empty otherwise).
    pub levels: Vec<LevelCounters>,
}

/// Live recording state behind an armed [`SpanCtx`]. Boxed so the
/// not-sampled case stays a single pointer-sized `None`.
#[derive(Debug)]
struct ActiveTrace {
    kind: &'static str,
    t0: Instant,
    unix_ms: u64,
    detail: String,
    spans: Vec<Span>,
    levels: Vec<LevelCounters>,
}

/// Handle returned by [`SpanCtx::begin`]; pass to [`SpanCtx::end`].
/// The sentinel (`u32::MAX`) means "context inactive, nothing to end".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    const OFF: SpanId = SpanId(u32::MAX);
}

/// A per-operation trace context. `off()` (the common case) is inert:
/// every method returns immediately. Construct with [`SpanCtx::sampled`]
/// to participate in 1-in-n sampling, or [`SpanCtx::forced`] to trace
/// unconditionally (used by `--explain`).
#[derive(Debug, Default)]
pub struct SpanCtx {
    inner: Option<Box<ActiveTrace>>,
}

impl SpanCtx {
    /// An inert context: all methods are no-ops.
    pub const fn off() -> Self {
        SpanCtx { inner: None }
    }

    /// An armed context if this operation is the 1-in-n sample;
    /// otherwise inert. One relaxed load when tracing is disabled.
    #[inline]
    pub fn sampled(kind: &'static str) -> Self {
        if should_sample() {
            Self::forced(kind)
        } else {
            Self::off()
        }
    }

    /// An unconditionally armed context (ignores the sampling rate but
    /// not much else: publication still goes through the recorder's
    /// threshold).
    pub fn forced(kind: &'static str) -> Self {
        SpanCtx {
            inner: Some(Box::new(ActiveTrace {
                kind,
                t0: Instant::now(),
                unix_ms: crate::now_unix_ms(),
                detail: String::new(),
                spans: Vec::new(),
                levels: Vec::new(),
            })),
        }
    }

    /// Arms this context in place via sampling, unless already armed.
    /// Lets a context embedded in a reusable scratch participate in
    /// sampling at the top of each operation.
    #[inline]
    pub fn arm_sampled(&mut self, kind: &'static str) {
        if self.inner.is_none() && should_sample() {
            *self = Self::forced(kind);
        }
    }

    /// True when this operation is being traced.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn elapsed_us(active: &ActiveTrace) -> u64 {
        active.t0.elapsed().as_micros() as u64
    }

    /// Opens a span; close it with [`end`](Self::end). Returns a
    /// sentinel id (and does nothing) when inactive.
    #[inline]
    pub fn begin(&mut self, layer: &'static str, name: &'static str) -> SpanId {
        let Some(active) = self.inner.as_deref_mut() else {
            return SpanId::OFF;
        };
        let start_us = Self::elapsed_us(active);
        let id = active.spans.len() as u32;
        active.spans.push(Span {
            layer,
            name,
            start_us,
            dur_us: 0,
            detail: String::new(),
        });
        SpanId(id)
    }

    /// Closes a span opened by [`begin`](Self::begin).
    #[inline]
    pub fn end(&mut self, id: SpanId) {
        self.end_detail(id, "");
    }

    /// Closes a span and attaches a payload (skipped when empty).
    pub fn end_detail(&mut self, id: SpanId, detail: &str) {
        let Some(active) = self.inner.as_deref_mut() else {
            return;
        };
        if id == SpanId::OFF {
            return;
        }
        let now_us = Self::elapsed_us(active);
        if let Some(span) = active.spans.get_mut(id.0 as usize) {
            span.dur_us = now_us.saturating_sub(span.start_us);
            if !detail.is_empty() {
                span.detail = detail.to_string();
            }
        }
    }

    /// Records a complete span that started at `start` (an `Instant`
    /// taken by the caller) and ends now. Convenient where begin/end
    /// would straddle a borrow.
    pub fn span_since(
        &mut self,
        layer: &'static str,
        name: &'static str,
        start: Instant,
        detail: &str,
    ) {
        let Some(active) = self.inner.as_deref_mut() else {
            return;
        };
        let now_us = Self::elapsed_us(active);
        let dur_us = start.elapsed().as_micros() as u64;
        active.spans.push(Span {
            layer,
            name,
            start_us: now_us.saturating_sub(dur_us),
            dur_us,
            detail: detail.to_string(),
        });
    }

    /// Records an instantaneous (zero-duration) note span.
    pub fn note(&mut self, layer: &'static str, name: &'static str, detail: &str) {
        let Some(active) = self.inner.as_deref_mut() else {
            return;
        };
        let now_us = Self::elapsed_us(active);
        active.spans.push(Span {
            layer,
            name,
            start_us: now_us,
            dur_us: 0,
            detail: detail.to_string(),
        });
    }

    /// Accumulates per-level traversal counters for a query trace.
    /// `level` 0 is the leaf level.
    #[allow(clippy::too_many_arguments)]
    pub fn tally_level(
        &mut self,
        level: usize,
        leaves: u64,
        internal: u64,
        cache_hits: u64,
        cache_misses: u64,
        device_reads: u64,
    ) {
        let Some(active) = self.inner.as_deref_mut() else {
            return;
        };
        if active.levels.len() <= level {
            active.levels.resize_with(level + 1, LevelCounters::default);
        }
        let lc = &mut active.levels[level];
        lc.nodes += leaves + internal;
        lc.leaves += leaves;
        lc.internal += internal;
        lc.cache_hits += cache_hits;
        lc.cache_misses += cache_misses;
        lc.device_reads += device_reads;
    }

    /// Sets the trace-level payload (`"results=117"`).
    pub fn set_detail(&mut self, detail: &str) {
        if let Some(active) = self.inner.as_deref_mut() {
            active.detail = detail.to_string();
        }
    }

    /// Absorbs ambient spans collected by an [`AmbientScope`] (spans
    /// recorded by a layer that has no `SpanCtx` in its signatures).
    pub fn absorb(&mut self, ambient: Vec<AmbientSpan>) {
        let Some(active) = self.inner.as_deref_mut() else {
            return;
        };
        for a in ambient {
            let start_us = a.start.saturating_duration_since(active.t0).as_micros() as u64;
            active.spans.push(Span {
                layer: a.layer,
                name: a.name,
                start_us,
                dur_us: a.end.saturating_duration_since(a.start).as_micros() as u64,
                detail: a.detail,
            });
        }
    }

    /// Completes the trace and returns it (None when inactive). The
    /// context reverts to inert, ready for the next `arm_sampled`.
    pub fn finish(&mut self) -> Option<Trace> {
        let active = self.inner.take()?;
        Some(Trace {
            kind: active.kind,
            unix_ms: active.unix_ms,
            total_us: active.t0.elapsed().as_micros() as u64,
            detail: active.detail,
            spans: active.spans,
            levels: active.levels,
        })
    }

    /// Completes the trace and publishes it to the flight recorder and
    /// any installed collector. No-op when inactive.
    pub fn finish_publish(&mut self) {
        if let Some(trace) = self.finish() {
            publish(trace);
        }
    }
}

// ---------------------------------------------------------------------------
// Ambient spans (layers without a SpanCtx in their signatures)
// ---------------------------------------------------------------------------

/// A completed span recorded without access to the operation's
/// [`SpanCtx`] — `Instant`-based so the absorbing context can rebase
/// it onto its own clock.
#[derive(Debug)]
pub struct AmbientSpan {
    /// Emitting layer (`"store"`, `"em"`, …).
    pub layer: &'static str,
    /// Phase name.
    pub name: &'static str,
    /// When the phase started.
    pub start: Instant,
    /// When the phase ended.
    pub end: Instant,
    /// Short free-form payload.
    pub detail: String,
}

thread_local! {
    static AMBIENT: std::cell::RefCell<Option<Vec<AmbientSpan>>> =
        const { std::cell::RefCell::new(None) };
}

/// Collects [`ambient_span`]s emitted on this thread between
/// construction and [`finish`](AmbientScope::finish). Used by cold
/// paths (merge commit, store open) to let `pr_store` report phases
/// without threading a `SpanCtx` through its API. Only installs the
/// thread-local collection when `active` is true, so the common
/// untraced path stays free.
pub struct AmbientScope {
    installed: bool,
}

impl AmbientScope {
    /// Begins collecting on this thread when `active`.
    pub fn begin(active: bool) -> Self {
        if active {
            AMBIENT.with(|a| *a.borrow_mut() = Some(Vec::new()));
        }
        AmbientScope { installed: active }
    }

    /// Stops collecting and returns the spans recorded on this thread.
    pub fn finish(self) -> Vec<AmbientSpan> {
        if self.installed {
            AMBIENT.with(|a| a.borrow_mut().take()).unwrap_or_default()
        } else {
            Vec::new()
        }
    }
}

impl Drop for AmbientScope {
    fn drop(&mut self) {
        if self.installed {
            AMBIENT.with(|a| a.borrow_mut().take());
        }
    }
}

/// Guard that records one ambient span from construction to drop, if
/// (and only if) an [`AmbientScope`] is collecting on this thread.
pub struct AmbientGuard {
    layer: &'static str,
    name: &'static str,
    start: Option<Instant>,
    detail: String,
}

impl AmbientGuard {
    /// Attaches a payload reported when the guard drops.
    pub fn detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let detail = std::mem::take(&mut self.detail);
        AMBIENT.with(|a| {
            if let Some(spans) = a.borrow_mut().as_mut() {
                spans.push(AmbientSpan {
                    layer: self.layer,
                    name: self.name,
                    start,
                    end,
                    detail,
                });
            }
        });
    }
}

/// Opens an ambient span guard. Near-free when no [`AmbientScope`] is
/// collecting on this thread (one TL borrow at construction, one at
/// drop).
pub fn ambient_span(layer: &'static str, name: &'static str) -> AmbientGuard {
    let collecting = AMBIENT.with(|a| a.borrow().is_some());
    AmbientGuard {
        layer,
        name,
        start: collecting.then(Instant::now),
        detail: String::new(),
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Bounded keep-the-slowest store of completed traces, grouped by
/// op-kind. See the module docs for the retention policy.
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
}

struct RecorderInner {
    keep_per_kind: usize,
    threshold_us: u64,
    /// (kind, slowest-first traces).
    kinds: Vec<(&'static str, Vec<Trace>)>,
}

impl FlightRecorder {
    fn new() -> Self {
        FlightRecorder {
            inner: Mutex::new(RecorderInner {
                keep_per_kind: 8,
                threshold_us: 0,
                kinds: Vec::new(),
            }),
        }
    }

    /// Sets the retention policy: keep the `keep_per_kind` slowest
    /// traces per op-kind, admitting only traces of at least
    /// `threshold_us` total time. Already-retained traces below the new
    /// bar are kept until evicted by slower arrivals.
    pub fn configure(&self, keep_per_kind: usize, threshold_us: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.keep_per_kind = keep_per_kind.max(1);
        inner.threshold_us = threshold_us;
    }

    /// Offers a completed trace; it is retained if it clears the
    /// threshold and is among the N slowest of its kind.
    pub fn offer(&self, trace: Trace) {
        let mut inner = self.inner.lock().unwrap();
        if trace.total_us < inner.threshold_us {
            return;
        }
        let keep = inner.keep_per_kind;
        let bucket = match inner.kinds.iter_mut().find(|(k, _)| *k == trace.kind) {
            Some((_, b)) => b,
            None => {
                inner.kinds.push((trace.kind, Vec::new()));
                &mut inner.kinds.last_mut().unwrap().1
            }
        };
        if bucket.len() == keep && trace.total_us <= bucket.last().map_or(0, |t| t.total_us) {
            return;
        }
        let at = bucket
            .iter()
            .position(|t| t.total_us < trace.total_us)
            .unwrap_or(bucket.len());
        bucket.insert(at, trace);
        bucket.truncate(keep);
    }

    /// Copies out all retained traces, grouped by kind (kinds in
    /// first-seen order, traces slowest-first within a kind).
    pub fn snapshot(&self) -> Vec<(&'static str, Vec<Trace>)> {
        self.inner.lock().unwrap().kinds.clone()
    }

    /// Drops all retained traces (policy is kept).
    pub fn clear(&self) {
        self.inner.lock().unwrap().kinds.clear();
    }
}

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::new)
}

/// Sets the process-wide flight recorder's retention policy.
pub fn configure_recorder(keep_per_kind: usize, threshold_us: u64) {
    recorder().configure(keep_per_kind, threshold_us);
}

// ---------------------------------------------------------------------------
// Collector (trace-file export / --explain)
// ---------------------------------------------------------------------------

/// An optional process-wide sink receiving *every* published trace (up
/// to a cap), installed by CLI consumers that want the traces
/// themselves rather than the slowest-N digest.
struct Collector {
    cap: usize,
    traces: Mutex<Vec<Trace>>,
}

static COLLECTOR: Mutex<Option<&'static Collector>> = Mutex::new(None);

/// Installs a process-wide collector keeping up to `cap` published
/// traces (further traces are dropped, never blocked on).
pub fn install_collector(cap: usize) {
    let collector = Box::leak(Box::new(Collector {
        cap: cap.max(1),
        traces: Mutex::new(Vec::new()),
    }));
    *COLLECTOR.lock().unwrap() = Some(collector);
}

/// Removes the collector and returns everything it captured.
pub fn drain_collector() -> Vec<Trace> {
    let collector = COLLECTOR.lock().unwrap().take();
    match collector {
        Some(c) => std::mem::take(&mut *c.traces.lock().unwrap()),
        None => Vec::new(),
    }
}

/// Publishes a completed trace to the flight recorder and (when
/// installed) the collector. Called by [`SpanCtx::finish_publish`].
pub fn publish(trace: Trace) {
    if let Some(c) = *COLLECTOR.lock().unwrap() {
        let mut traces = c.traces.lock().unwrap();
        if traces.len() < c.cap {
            traces.push(trace.clone());
        }
    }
    recorder().offer(trace);
}

// ---------------------------------------------------------------------------
// JSON renderings
// ---------------------------------------------------------------------------

/// Renders one trace as a JSON object (spans, levels, totals) — the
/// `prtree slow --json` / `stats --json` representation.
pub fn trace_json(t: &Trace) -> String {
    let mut spans = JsonArr::new();
    for s in &t.spans {
        let mut o = JsonObj::new();
        o.str("layer", s.layer)
            .str("name", s.name)
            .u64("start_us", s.start_us)
            .u64("dur_us", s.dur_us);
        if !s.detail.is_empty() {
            o.str("detail", &s.detail);
        }
        spans.push_raw(o.finish());
    }
    let mut levels = JsonArr::new();
    for (i, l) in t.levels.iter().enumerate() {
        let mut o = JsonObj::new();
        o.u64("level", i as u64)
            .u64("nodes", l.nodes)
            .u64("leaves", l.leaves)
            .u64("internal", l.internal)
            .u64("cache_hits", l.cache_hits)
            .u64("cache_misses", l.cache_misses)
            .u64("device_reads", l.device_reads);
        levels.push_raw(o.finish());
    }
    let mut obj = JsonObj::new();
    obj.str("kind", t.kind)
        .u64("unix_ms", t.unix_ms)
        .u64("total_us", t.total_us);
    if !t.detail.is_empty() {
        obj.str("detail", &t.detail);
    }
    obj.raw("spans", &spans.finish());
    if !t.levels.is_empty() {
        obj.raw("levels", &levels.finish());
    }
    obj.finish()
}

/// Renders the flight recorder snapshot as a JSON array of
/// `{kind, traces}` groups.
pub fn slow_traces_json(groups: &[(&'static str, Vec<Trace>)]) -> String {
    let mut arr = JsonArr::new();
    for (kind, traces) in groups {
        let mut ts = JsonArr::new();
        for t in traces {
            ts.push_raw(trace_json(t));
        }
        let mut o = JsonObj::new();
        o.str("kind", kind).raw("traces", &ts.finish());
        arr.push_raw(o.finish());
    }
    arr.finish()
}

/// Renders traces in the Chrome trace event format (the "JSON object
/// format": `{"traceEvents": [...]}`), loadable in `about://tracing`
/// and Perfetto. Each trace gets its own `tid`; spans become `B`/`E`
/// pairs nested inside an op-level pair, with timestamps anchored at
/// the trace's wall-clock start.
///
/// B/E pairing is guaranteed per tid: spans are replayed through an
/// explicit open-span stack (a child whose recorded end would overrun
/// its parent is clamped), so every `B` has a matching same-name `E`
/// and pairs nest properly — the property CI validates.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    let mut arr = JsonArr::new();
    // Thread-name metadata first (ph "M" carries no B/E semantics).
    for (i, t) in traces.iter().enumerate() {
        let mut name_args = JsonObj::new();
        name_args.str("name", t.kind);
        let mut o = JsonObj::new();
        o.str("name", "thread_name")
            .str("ph", "M")
            .u64("pid", 1)
            .u64("tid", i as u64 + 1)
            .raw("args", &name_args.finish());
        arr.push_raw(o.finish());
    }
    for (i, t) in traces.iter().enumerate() {
        let tid = i as u64 + 1;
        let base = t.unix_ms * 1000;
        let ev = |ph: &str, name: &str, cat: &str, ts: u64, args: Option<String>| {
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("cat", cat)
                .str("ph", ph)
                .u64("ts", ts)
                .u64("pid", 1)
                .u64("tid", tid);
            if let Some(a) = args {
                o.raw("args", &a);
            }
            o.finish()
        };
        let mut args = JsonObj::new();
        if !t.detail.is_empty() {
            args.str("detail", &t.detail);
        }
        args.u64("total_us", t.total_us);
        arr.push_raw(ev("B", t.kind, "op", base, Some(args.finish())));
        // Spans sorted by start (outer-first on ties) and replayed
        // through a stack of open spans: before opening a span, close
        // every open span that ends at or before its start.
        let mut spans: Vec<&Span> = t.spans.iter().collect();
        spans.sort_by_key(|s| (s.start_us, std::cmp::Reverse(s.dur_us)));
        // Open spans: (name, cat, end_us). The op itself is the root.
        let mut stack: Vec<(&str, &str, u64)> = vec![(t.kind, "op", t.total_us)];
        for s in spans {
            let start = s.start_us.min(t.total_us);
            while stack.len() > 1 && stack.last().unwrap().2 <= start {
                let (name, cat, end) = stack.pop().unwrap();
                arr.push_raw(ev("E", name, cat, base + end, None));
            }
            // Clamp to the enclosing open span so pairs stay nested.
            let end = (start + s.dur_us).min(stack.last().unwrap().2);
            let mut sargs = JsonObj::new();
            sargs.str("layer", s.layer);
            sargs.u64("dur_us", s.dur_us);
            if !s.detail.is_empty() {
                sargs.str("detail", &s.detail);
            }
            arr.push_raw(ev("B", s.name, s.layer, base + start, Some(sargs.finish())));
            stack.push((s.name, s.layer, end));
        }
        while let Some((name, cat, end)) = stack.pop() {
            arr.push_raw(ev("E", name, cat, base + end, None));
        }
    }
    let mut doc = JsonObj::new();
    doc.raw("traceEvents", &arr.finish_pretty())
        .str("displayTimeUnit", "ms");
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Serializes tests that flip the process-wide sampling switch.
    fn sampling_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_ctx_is_inert() {
        let mut ctx = SpanCtx::off();
        assert!(!ctx.is_active());
        let id = ctx.begin("em", "read");
        assert_eq!(id, SpanId::OFF);
        ctx.end(id);
        ctx.tally_level(0, 1, 0, 0, 0, 0);
        assert!(ctx.finish().is_none());
    }

    #[test]
    fn disabled_sampling_never_arms() {
        let _g = sampling_lock();
        set_sampling(0);
        assert!(!enabled());
        let ctx = SpanCtx::sampled("window");
        assert!(!ctx.is_active());
        let mut ctx = SpanCtx::off();
        ctx.arm_sampled("window");
        assert!(!ctx.is_active());
    }

    #[test]
    fn sample_every_one_arms_every_op() {
        let _g = sampling_lock();
        set_sampling(1);
        for _ in 0..3 {
            assert!(SpanCtx::sampled("window").is_active());
        }
        set_sampling(0);
    }

    #[test]
    fn sample_every_n_arms_one_in_n() {
        let _g = sampling_lock();
        set_sampling(4);
        let armed = (0..64)
            .filter(|_| SpanCtx::sampled("w").is_active())
            .count();
        set_sampling(0);
        assert_eq!(armed, 16, "1-in-4 sampling over 64 ops");
    }

    #[test]
    fn spans_and_levels_round_trip() {
        let mut ctx = SpanCtx::forced("window");
        let id = ctx.begin("tree", "traverse");
        std::thread::sleep(Duration::from_millis(2));
        ctx.end_detail(id, "nodes=5");
        ctx.tally_level(1, 0, 2, 0, 0, 2);
        ctx.tally_level(0, 3, 0, 2, 1, 1);
        ctx.set_detail("results=9");
        let t = ctx.finish().expect("forced ctx must yield a trace");
        assert_eq!(t.kind, "window");
        assert_eq!(t.detail, "results=9");
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "traverse");
        assert!(t.spans[0].dur_us >= 1_000, "slept 2ms inside the span");
        assert_eq!(t.spans[0].detail, "nodes=5");
        assert_eq!(t.levels.len(), 2);
        assert_eq!(t.levels[0].leaves, 3);
        assert_eq!(t.levels[0].nodes, 3);
        assert_eq!(t.levels[0].cache_hits, 2);
        assert_eq!(t.levels[1].internal, 2);
        assert!(t.total_us >= t.spans[0].dur_us);
        // Context is reusable after finish.
        assert!(!ctx.is_active());
    }

    #[test]
    fn span_since_and_note() {
        let mut ctx = SpanCtx::forced("merge");
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        ctx.span_since("em", "component_read", start, "slot=2");
        ctx.note("live", "cut", "cut_seq=17");
        let t = ctx.finish().unwrap();
        assert_eq!(t.spans.len(), 2);
        assert!(t.spans[0].dur_us >= 500);
        assert_eq!(t.spans[1].dur_us, 0);
        assert_eq!(t.spans[1].detail, "cut_seq=17");
    }

    #[test]
    fn ambient_spans_are_absorbed() {
        let scope = AmbientScope::begin(true);
        {
            let mut g = ambient_span("store", "commit");
            g.detail("pages=7");
            std::thread::sleep(Duration::from_millis(1));
        }
        let spans = scope.finish();
        assert_eq!(spans.len(), 1);
        let mut ctx = SpanCtx::forced("merge");
        ctx.absorb(spans);
        let t = ctx.finish().unwrap();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].layer, "store");
        assert_eq!(t.spans[0].detail, "pages=7");
    }

    #[test]
    fn ambient_span_without_scope_records_nothing() {
        {
            let _g = ambient_span("store", "commit");
        }
        let scope = AmbientScope::begin(true);
        assert!(scope.finish().is_empty());
    }

    #[test]
    fn inactive_scope_collects_nothing() {
        let scope = AmbientScope::begin(false);
        {
            let _g = ambient_span("store", "commit");
        }
        assert!(scope.finish().is_empty());
    }

    fn mk_trace(kind: &'static str, total_us: u64) -> Trace {
        Trace {
            kind,
            unix_ms: 1_000,
            total_us,
            detail: String::new(),
            spans: Vec::new(),
            levels: Vec::new(),
        }
    }

    #[test]
    fn recorder_keeps_n_slowest_per_kind() {
        let rec = FlightRecorder::new();
        rec.configure(3, 0);
        for us in [10, 50, 30, 5, 100, 40] {
            rec.offer(mk_trace("window", us));
        }
        rec.offer(mk_trace("knn", 7));
        let snap = rec.snapshot();
        let window = &snap.iter().find(|(k, _)| *k == "window").unwrap().1;
        let totals: Vec<u64> = window.iter().map(|t| t.total_us).collect();
        assert_eq!(totals, vec![100, 50, 40], "slowest 3, sorted desc");
        let knn = &snap.iter().find(|(k, _)| *k == "knn").unwrap().1;
        assert_eq!(knn.len(), 1);
    }

    #[test]
    fn recorder_threshold_filters_admission() {
        let rec = FlightRecorder::new();
        rec.configure(8, 25);
        rec.offer(mk_trace("write", 10));
        rec.offer(mk_trace("write", 30));
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.len(), 1);
        assert_eq!(snap[0].1[0].total_us, 30);
    }

    #[test]
    fn chrome_export_pairs_and_nests() {
        let mut t = mk_trace("window", 100);
        t.spans.push(Span {
            layer: "tree",
            name: "traverse",
            start_us: 0,
            dur_us: 100,
            detail: String::new(),
        });
        t.spans.push(Span {
            layer: "em",
            name: "page_read",
            start_us: 10,
            dur_us: 20,
            detail: "page=4".into(),
        });
        let doc = chrome_trace_json(&[t]);
        assert!(doc.starts_with('{'));
        assert!(doc.contains("\"traceEvents\""));
        // Balanced B/E count.
        let b = doc.matches("\"ph\":\"B\"").count();
        let e = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 3);
        assert_eq!(e, 3);
        assert!(doc.contains("\"ph\":\"M\""));
        // The op B event comes before the span B events (same ts, the
        // op's dur is larger → sorts first), and every E follows its B.
        let op_b = doc
            .find("\"name\":\"window\",\"cat\":\"op\",\"ph\":\"B\"")
            .unwrap();
        let span_b = doc
            .find("\"name\":\"traverse\",\"cat\":\"tree\",\"ph\":\"B\"")
            .unwrap();
        assert!(op_b < span_b, "outer op must open before inner span");
    }

    #[test]
    fn trace_json_has_spans_and_levels() {
        let mut t = mk_trace("window", 55);
        t.detail = "results=3".into();
        t.spans.push(Span {
            layer: "em",
            name: "page_read",
            start_us: 1,
            dur_us: 2,
            detail: String::new(),
        });
        t.levels.push(LevelCounters {
            nodes: 3,
            leaves: 3,
            internal: 0,
            cache_hits: 1,
            cache_misses: 2,
            device_reads: 2,
        });
        let j = trace_json(&t);
        assert!(j.contains("\"kind\":\"window\""));
        assert!(j.contains("\"detail\":\"results=3\""));
        assert!(j.contains("\"level\":0"));
        assert!(j.contains("\"device_reads\":2"));
        let grouped = slow_traces_json(&[("window", vec![t])]);
        assert!(grouped.contains("\"kind\":\"window\""));
        assert!(grouped.contains("\"traces\":["));
    }

    #[test]
    fn collector_captures_published_traces() {
        let _g = sampling_lock();
        drain_collector();
        install_collector(4);
        publish(mk_trace("window", 9));
        publish(mk_trace("write", 11));
        let traces = drain_collector();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].kind, "window");
        // Drained collector no longer captures.
        publish(mk_trace("window", 5));
        assert!(drain_collector().is_empty());
    }
}
