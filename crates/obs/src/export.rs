//! Exporters: Prometheus-style text and JSON renderings of a
//! [`RegistrySnapshot`] and an [`EventLog`].
//!
//! Both exporters consume *snapshots*, never live cells, so exporting
//! is pure formatting: take the snapshot once, render it as many ways
//! as needed. The JSON shape is versioned ([`SCHEMA_VERSION`]) — CI's
//! metrics-roundtrip job parses it and asserts the key metrics of all
//! four instrumented layers are present and account exactly for the
//! run's acknowledged writes.

use crate::events::EventLog;
use crate::hist::LatencyHistogram;
use crate::json::{JsonArr, JsonObj};
use crate::registry::{MetricSnapshot, MetricValue, RegistrySnapshot};

/// Version stamp of every JSON document this crate emits (snapshots,
/// `BENCH_*.json` rows). Bump on breaking shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Quantiles reported for histograms in both exporters.
const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (1.0, "1")];

fn prom_series(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", pairs.join(","))
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
/// Histograms are rendered as summaries (`_count`, `_sum`, quantile
/// series) since the buckets are log-spaced, not cumulative-le.
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for m in &snap.metrics {
        if m.name != last_name {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            let kind = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
            last_name = &m.name;
        }
        match &m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                out.push_str(&format!("{} {v}\n", prom_series(&m.name, &m.labels, None)));
            }
            MetricValue::Histogram(h) => {
                for (q, qs) in QUANTILES {
                    out.push_str(&format!(
                        "{} {}\n",
                        prom_series(&m.name, &m.labels, Some(("quantile", qs))),
                        h.quantile(q)
                    ));
                }
                out.push_str(&format!(
                    "{}_sum {}\n",
                    prom_series(&m.name, &m.labels, None),
                    (h.mean() * h.len() as f64) as u64
                ));
                out.push_str(&format!(
                    "{}_count {}\n",
                    prom_series(&m.name, &m.labels, None),
                    h.len()
                ));
            }
        }
    }
    out
}

fn histogram_json(h: &LatencyHistogram) -> String {
    let mut o = JsonObj::new();
    o.u64("count", h.len())
        .u64("min", h.min())
        .u64("max", h.max())
        .f64p("mean", h.mean(), 1)
        .u64("p50", h.quantile(0.5))
        .u64("p90", h.quantile(0.9))
        .u64("p99", h.quantile(0.99));
    o.finish()
}

/// One metric as a JSON object (`{"name":..,"type":..,"value":..}` or
/// a histogram summary).
pub fn metric_json(m: &MetricSnapshot) -> String {
    let mut o = JsonObj::new();
    o.str("name", &m.name);
    if !m.labels.is_empty() {
        let mut lo = JsonObj::new();
        for (k, v) in &m.labels {
            lo.str(k, v);
        }
        o.raw("labels", &lo.finish());
    }
    match &m.value {
        MetricValue::Counter(v) => o.str("type", "counter").u64("value", *v),
        MetricValue::Gauge(v) => o.str("type", "gauge").u64("value", *v),
        MetricValue::Histogram(h) => o.str("type", "histogram").raw("value", &histogram_json(h)),
    };
    o.finish()
}

/// One event as a JSON object.
pub fn event_json(e: &crate::events::Event) -> String {
    let mut o = JsonObj::new();
    o.u64("seq", e.seq)
        .u64("unix_ms", e.unix_ms)
        .str("kind", e.kind)
        .str("detail", &e.detail);
    if let Some(d) = e.duration_us {
        o.u64("duration_us", d);
    }
    o.finish()
}

/// The full observability document: schema version, capture time, every
/// metric, and (optionally) the event log. This is what
/// `prtree stats --json` and `--metrics-file` emit.
pub fn snapshot_json(snap: &RegistrySnapshot, events: Option<&EventLog>) -> String {
    snapshot_json_full(snap, events, None)
}

/// [`snapshot_json`] plus an optional `slow_traces` section — the
/// flight recorder's slowest-per-kind digest, rendered via
/// [`crate::trace::slow_traces_json`]. `prtree stats --json` passes
/// the live recorder snapshot here.
pub fn snapshot_json_full(
    snap: &RegistrySnapshot,
    events: Option<&EventLog>,
    slow_traces: Option<&[(&'static str, Vec<crate::trace::Trace>)]>,
) -> String {
    let mut metrics = JsonArr::new();
    for m in &snap.metrics {
        metrics.push_raw(metric_json(m));
    }
    let mut o = JsonObj::new();
    o.u64("schema_version", SCHEMA_VERSION)
        .u64("unix_ms", snap.unix_ms)
        .raw("metrics", &metrics.finish_pretty());
    if let Some(log) = events {
        let mut ev = JsonArr::new();
        for e in &log.events {
            ev.push_raw(event_json(e));
        }
        o.raw("events", &ev.finish_pretty())
            .u64("events_dropped", log.dropped);
    }
    if let Some(groups) = slow_traces {
        o.raw("slow_traces", &crate::trace::slow_traces_json(groups));
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventRing;
    use crate::registry::Registry;

    fn sample() -> Registry {
        let r = Registry::new();
        r.counter("em_device_reads_total", "device block reads")
            .add(7);
        r.counter_with("tree_queries_total", &[("kind", "window")], "queries")
            .add(3);
        r.gauge("live_memtable_items", "items buffered").set(42);
        let h = r.histogram("live_wal_fsync_us", "fsync latency");
        h.record(100);
        h.record(200);
        r
    }

    #[test]
    fn prometheus_text_has_help_type_and_series() {
        let text = prometheus_text(&sample().snapshot());
        assert!(text.contains("# HELP em_device_reads_total device block reads"));
        assert!(text.contains("# TYPE em_device_reads_total counter"));
        assert!(text.contains("em_device_reads_total 7"));
        assert!(text.contains("tree_queries_total{kind=\"window\"} 3"));
        assert!(text.contains("# TYPE live_memtable_items gauge"));
        assert!(text.contains("live_wal_fsync_us{quantile=\"0.5\"}"));
        assert!(text.contains("live_wal_fsync_us_count 2"));
    }

    #[test]
    fn snapshot_json_is_versioned_and_complete() {
        let reg = sample();
        let ring = EventRing::new(8);
        ring.emit("merge_commit", "cut_seq=10");
        let doc = snapshot_json(&reg.snapshot(), Some(&ring.snapshot()));
        assert!(doc.contains("\"schema_version\":1"));
        assert!(doc.contains("\"name\":\"em_device_reads_total\",\"type\":\"counter\",\"value\":7"));
        assert!(doc.contains("\"labels\":{\"kind\":\"window\"}"));
        assert!(doc.contains("\"type\":\"gauge\",\"value\":42"));
        assert!(doc.contains("\"p50\":"));
        assert!(doc.contains("\"kind\":\"merge_commit\""));
        assert!(doc.contains("\"events_dropped\":0"));
        // The 2-arg form carries no slow_traces section; the full form
        // includes the flight-recorder digest.
        assert!(!doc.contains("\"slow_traces\""));
        let slow = vec![(
            "window",
            vec![crate::trace::Trace {
                kind: "window",
                unix_ms: 5,
                total_us: 99,
                detail: String::new(),
                spans: Vec::new(),
                levels: Vec::new(),
            }],
        )];
        let full = snapshot_json_full(&reg.snapshot(), None, Some(&slow));
        assert!(full.contains("\"slow_traces\":[{\"kind\":\"window\""));
        assert!(full.contains("\"total_us\":99"));
    }
}
