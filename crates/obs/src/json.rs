//! Minimal hand-rolled JSON encoding (the offline build has no serde).
//!
//! This is the single JSON encoder for the workspace: the exporters,
//! `pr_bench::table`, and every `BENCH_*.json` writer build output
//! through [`JsonObj`]/[`JsonArr`] instead of ad-hoc `format!` strings,
//! so escaping (RFC 8259) and number formatting live in exactly one
//! place.

/// Escapes and quotes a string per RFC 8259.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incremental JSON object builder.
///
/// Methods chain (`&mut self -> &mut Self`) and `finish()` closes the
/// object. Values are emitted in insertion order.
#[derive(Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&json_string(k));
        self.buf.push(':');
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        let s = json_string(v);
        self.key(k).buf.push_str(&s);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        let s = v.to_string();
        self.key(k).buf.push_str(&s);
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        let s = v.to_string();
        self.key(k).buf.push_str(&s);
        self
    }

    /// Adds a float field (`null` when not finite, since JSON has no
    /// NaN/Inf).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        let s = if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        };
        self.key(k).buf.push_str(&s);
        self
    }

    /// Adds a float field rounded to `prec` decimal places.
    pub fn f64p(&mut self, k: &str, v: f64, prec: usize) -> &mut Self {
        let s = if v.is_finite() {
            format!("{v:.prec$}")
        } else {
            "null".to_string()
        };
        self.key(k).buf.push_str(&s);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        let s = if v { "true" } else { "false" };
        self.key(k).buf.push_str(s);
        self
    }

    /// Adds a pre-serialized JSON value verbatim (caller guarantees
    /// validity).
    pub fn raw(&mut self, k: &str, raw_json: &str) -> &mut Self {
        self.key(k).buf.push_str(raw_json);
        self
    }

    /// Adds an array of strings (each escaped).
    pub fn strings<S: AsRef<str>>(&mut self, k: &str, items: &[S]) -> &mut Self {
        let body: Vec<String> = items.iter().map(|s| json_string(s.as_ref())).collect();
        let arr = format!("[{}]", body.join(","));
        self.key(k).buf.push_str(&arr);
        self
    }

    /// Closes the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental JSON array builder.
#[derive(Default)]
pub struct JsonArr {
    items: Vec<String>,
}

impl JsonArr {
    /// An empty array.
    pub fn new() -> Self {
        JsonArr::default()
    }

    /// Appends a pre-serialized JSON value.
    pub fn push_raw(&mut self, raw_json: impl Into<String>) -> &mut Self {
        self.items.push(raw_json.into());
        self
    }

    /// Appends an escaped string.
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.items.push(json_string(s));
        self
    }

    /// Closes the array (compact form).
    pub fn finish(&self) -> String {
        format!("[{}]", self.items.join(","))
    }

    /// Closes the array with one element per line — enough structure
    /// for downstream tooling and diffable output files.
    pub fn finish_pretty(&self) -> String {
        if self.items.is_empty() {
            return "[]".to_string();
        }
        let body: Vec<String> = self.items.iter().map(|i| format!("  {i}")).collect();
        format!("[\n{}\n]", body.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(
            json_string("quote \" backslash \\ newline \n tab \t"),
            "\"quote \\\" backslash \\\\ newline \\n tab \\t\""
        );
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn builds_nested_objects_and_arrays() {
        let mut inner = JsonObj::new();
        inner.u64("a", 1).bool("b", true);
        let mut arr = JsonArr::new();
        arr.push_raw(inner.finish()).push_str("x");
        let mut obj = JsonObj::new();
        obj.str("name", "t")
            .f64p("ratio", 1.005, 2)
            .i64("neg", -3)
            .raw("items", &arr.finish())
            .strings("tags", &["p", "q"]);
        assert_eq!(
            obj.finish(),
            r#"{"name":"t","ratio":1.00,"neg":-3,"items":[{"a":1,"b":true},"x"],"tags":["p","q"]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObj::new();
        o.f64("nan", f64::NAN).f64p("inf", f64::INFINITY, 1);
        assert_eq!(o.finish(), r#"{"nan":null,"inf":null}"#);
    }

    #[test]
    fn pretty_array_is_one_item_per_line() {
        let mut a = JsonArr::new();
        a.push_raw("1").push_raw("2");
        assert_eq!(a.finish_pretty(), "[\n  1,\n  2\n]");
        assert_eq!(JsonArr::new().finish_pretty(), "[]");
    }
}
