//! Process-wide metrics registry: named, labeled counters, gauges and
//! latency histograms with lock-free hot-path recording and
//! snapshot-on-read.
//!
//! # Design
//!
//! The registry is a map from `(name, sorted labels)` to a metric cell;
//! registration (`counter()`, `gauge()`, `histogram()`) takes a mutex
//! once and hands back a cheaply clonable handle ([`Counter`],
//! [`Gauge`], [`Histogram`]) that records without ever touching the map
//! again. Instrumented crates register their handles once in a
//! `OnceLock` catalog and bump them from hot paths, so recording costs:
//!
//! * counter add — one relaxed `fetch_add` into one of 8 cache-padded
//!   shards (the `ShardedNodeCache`/`HitCounters` pattern: writers on
//!   different threads don't bounce a shared line),
//! * gauge set/add/sub — one relaxed RMW on a single atomic,
//! * histogram record — a bucket increment plus running-stat RMWs
//!   (see [`AtomicHistogram`](crate::hist::AtomicHistogram)).
//!
//! A global recording switch ([`set_recording`]) turns counter,
//! histogram and event recording into a single relaxed load + branch —
//! this is how the `hot_query` bench measures observability overhead
//! (instrumented loop with recording on vs. off in the same run).
//! Gauges ignore the switch: they mirror *state* (resident bytes,
//! inflight window), not traffic, and freezing them would make
//! snapshots lie.
//!
//! `snapshot()` walks the map and materializes every cell into plain
//! values ([`RegistrySnapshot`]) without stopping writers; counters sum
//! their shards, histograms copy their buckets. Snapshots subtract
//! ([`RegistrySnapshot::delta_since`]) so before/after deltas around a
//! workload are one call.
//!
//! Metric naming follows Prometheus conventions: `snake_case`,
//! `_total` suffix on counters, unit suffix on histograms (`_us` for
//! microseconds), optional `{key="value"}` labels for same-name series.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{AtomicHistogram, LatencyHistogram};

/// Counter shard count — enough to keep a handful of writer threads off
/// each other's cache lines without bloating snapshot reads.
const SHARDS: usize = 8;

/// One cache line per shard so concurrent writers don't false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// The sharded cell behind a [`Counter`].
struct ShardedU64 {
    shards: [PaddedU64; SHARDS],
}

impl ShardedU64 {
    fn new() -> Self {
        ShardedU64 {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Relaxed);
    }

    fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// Round-robin shard assignment, decided once per thread on first use.
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Relaxed) % SHARDS;
            c.set(v);
        }
        v
    })
}

/// Global recording switch (counters, histograms, events). On by
/// default; flipping it off reduces every record call to a relaxed
/// load + branch.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Enables or disables metric/event recording process-wide.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Relaxed);
}

/// True when recording is enabled (the default).
pub fn recording() -> bool {
    RECORDING.load(Relaxed)
}

/// A monotonically increasing counter handle. Clone freely; all clones
/// share the cell.
#[derive(Clone)]
pub struct Counter(Arc<ShardedU64>);

impl Counter {
    /// Adds `n` (no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if recording() {
            self.0.add(n);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (sum over shards).
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge handle: an arbitrary up/down value mirroring current state.
/// Not subject to the recording switch (see module docs).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Subtracts `n`, saturating at zero (concurrent add/sub may
    /// transiently race the clamp; gauges are advisory state views).
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A latency histogram handle (see [`AtomicHistogram`] for the cell).
#[derive(Clone)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Records one value (no-op while recording is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if recording() {
            self.0.record(v);
        }
    }

    /// Records a duration in whole microseconds.
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Snapshot of the cell as an owned histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.snapshot()
    }
}

enum Cell {
    Counter(Arc<ShardedU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<AtomicHistogram>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: &'static str,
    cell: Cell,
}

type Key = (&'static str, Vec<(String, String)>);

/// The metric registry. Most code uses the process-wide [`global()`]
/// instance; tests may build private registries.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Entry>>,
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or registers an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Gets or registers a labeled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
        help: &'static str,
    ) -> Counter {
        let mut map = self.metrics.lock().unwrap();
        let entry = map
            .entry((name, sorted_labels(labels)))
            .or_insert_with(|| Entry {
                help,
                cell: Cell::Counter(Arc::new(ShardedU64::new())),
            });
        match &entry.cell {
            Cell::Counter(c) => Counter(Arc::clone(c)),
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Gets or registers an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Gets or registers a labeled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
        help: &'static str,
    ) -> Gauge {
        let mut map = self.metrics.lock().unwrap();
        let entry = map
            .entry((name, sorted_labels(labels)))
            .or_insert_with(|| Entry {
                help,
                cell: Cell::Gauge(Arc::new(AtomicU64::new(0))),
            });
        match &entry.cell {
            Cell::Gauge(g) => Gauge(Arc::clone(g)),
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Gets or registers an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Gets or registers a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
        help: &'static str,
    ) -> Histogram {
        let mut map = self.metrics.lock().unwrap();
        let entry = map
            .entry((name, sorted_labels(labels)))
            .or_insert_with(|| Entry {
                help,
                cell: Cell::Histogram(Arc::new(AtomicHistogram::new())),
            });
        match &entry.cell {
            Cell::Histogram(h) => Histogram(Arc::clone(h)),
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Materializes every metric into plain values without stopping
    /// writers. Order is deterministic (name, then labels).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.metrics.lock().unwrap();
        let metrics = map
            .iter()
            .map(|((name, labels), entry)| MetricSnapshot {
                name: name.to_string(),
                labels: labels.clone(),
                help: entry.help.to_string(),
                value: match &entry.cell {
                    Cell::Counter(c) => MetricValue::Counter(c.get()),
                    Cell::Gauge(g) => MetricValue::Gauge(g.load(Relaxed)),
                    Cell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        RegistrySnapshot {
            unix_ms: crate::now_unix_ms(),
            metrics,
        }
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

/// One metric's snapshot value.
#[derive(Clone)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Full histogram copy (mergeable, quantile-queryable).
    Histogram(LatencyHistogram),
}

/// One named metric in a snapshot.
#[derive(Clone)]
pub struct MetricSnapshot {
    /// Metric name (`snake_case`, `_total`/`_us` suffix conventions).
    pub name: String,
    /// Sorted label pairs (empty for unlabeled metrics).
    pub labels: Vec<(String, String)>,
    /// One-line help string from registration.
    pub help: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of the whole registry.
#[derive(Clone)]
pub struct RegistrySnapshot {
    /// Wall-clock capture time (ms since the unix epoch).
    pub unix_ms: u64,
    /// Every metric, deterministically ordered.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// The change since `earlier`: counters and histograms subtract
    /// (saturating — a metric born after `earlier` contributes its full
    /// value), gauges pass through their current value. One call gives
    /// the before/after delta around a workload.
    pub fn delta_since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        type Key<'a> = (&'a str, &'a [(String, String)]);
        let prior: BTreeMap<Key, &MetricValue> = earlier
            .metrics
            .iter()
            .map(|m| ((m.name.as_str(), m.labels.as_slice()), &m.value))
            .collect();
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let value = match (&m.value, prior.get(&(m.name.as_str(), m.labels.as_slice()))) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(was))) => {
                        MetricValue::Counter(now.saturating_sub(*was))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(was))) => {
                        MetricValue::Histogram(now.delta_since(was))
                    }
                    (v, _) => v.clone(),
                };
                MetricSnapshot {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    help: m.help.clone(),
                    value,
                }
            })
            .collect();
        RegistrySnapshot {
            unix_ms: self.unix_ms,
            metrics,
        }
    }

    /// The value of the counter `name`, summed across label sets
    /// (0 when absent) — the common lookup in tests and gates.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// The value of the gauge `name` (first label set; 0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Gauge(v) => Some(*v),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// The histogram `name` (first label set), if present.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Histogram(h) => Some(h),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_across_handles_and_threads() {
        let r = Registry::new();
        let c = r.counter("test_ops_total", "ops");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Re-registration returns the same cell.
        assert_eq!(r.counter("test_ops_total", "ops").get(), 80_000);
        assert_eq!(r.snapshot().counter("test_ops_total"), 80_000);
    }

    #[test]
    fn labels_separate_series_and_sum_in_lookup() {
        let r = Registry::new();
        r.counter_with("q_total", &[("kind", "window")], "q").add(3);
        r.counter_with("q_total", &[("kind", "knn")], "q").add(4);
        let snap = r.snapshot();
        assert_eq!(snap.counter("q_total"), 7);
        assert_eq!(snap.metrics.len(), 2);
    }

    #[test]
    fn gauge_set_add_sub_saturates() {
        let r = Registry::new();
        let g = r.gauge("resident_bytes", "bytes");
        g.set(100);
        g.add(50);
        g.sub(200);
        assert_eq!(g.get(), 0);
        assert_eq!(r.snapshot().gauge("resident_bytes"), 0);
    }

    #[test]
    fn histogram_snapshot_and_delta() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "latency");
        h.record(10);
        h.record(100);
        let before = r.snapshot();
        h.record(1_000);
        let delta = r.snapshot().delta_since(&before);
        let d = delta.histogram("lat_us").unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.quantile(0.5) >= 1_000);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let r = Registry::new();
        let c = r.counter("n_total", "n");
        c.add(5);
        let before = r.snapshot();
        c.add(7);
        r.counter("born_later_total", "late").add(2);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counter("n_total"), 7);
        // New metric contributes its full value.
        assert_eq!(delta.counter("born_later_total"), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "x");
        r.gauge("x", "x");
    }

    // The recording-switch test lives in tests/recording.rs: it flips
    // process-global state, so it needs its own test binary rather than
    // racing the parallel unit tests here.
}
