//! Hand-rolled HDR-style latency histograms (no crates.io).
//!
//! Fixed log₂-bucketed layout, the scheme HdrHistogram popularized: a
//! value is placed by the position of its highest set bit (the
//! "exponent") and [`SUB_BITS`] further bits of mantissa, giving a
//! constant relative error of at most `1/2^SUB_BITS` (≈ 3% here) across
//! the full `u64` range — microseconds and minutes share one array.
//! Recording is one `leading_zeros` + one increment; percentile lookup
//! walks the counts once. No allocation after construction, no
//! dependency, and merging two histograms is element-wise addition,
//! which is how the mixed read/write bench combines per-thread
//! recorders.
//!
//! Two flavours share the bucket math:
//!
//! * [`LatencyHistogram`] — the owned, single-writer form (`&mut self`
//!   recording). This is the snapshot/merge/quantile currency; it moved
//!   here from `pr_bench::hist` so runtime code can use it too
//!   (pr-bench re-exports it unchanged).
//! * [`AtomicHistogram`] — the shared, lock-free form the metrics
//!   registry hands out: `record(&self, v)` is a relaxed fetch-add into
//!   one of 2048 buckets, and `snapshot()` materializes a
//!   [`LatencyHistogram`] without stopping writers.
//!
//! Values are raw `u64`s; recorders pick the unit and encode it in the
//! metric name (`*_us` histograms store microseconds, benches record
//! nanoseconds and report microseconds at the end).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Mantissa bits per power of two (32 sub-buckets ⇒ ≤ 3.2% error).
const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Bucket count: 64 exponents × 32 sub-buckets.
const BUCKETS: usize = 64 * SUB_COUNT;

/// Bucket index of `value` (monotone in `value`).
fn index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        // Values below one full mantissa resolve exactly.
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = (value >> (exp - SUB_BITS)) as usize & (SUB_COUNT - 1);
    ((exp - SUB_BITS + 1) as usize) * SUB_COUNT + sub
}

/// Representative (upper-edge) value of bucket `i` — what percentile
/// queries report. At most `1/2^SUB_BITS` above any value the bucket
/// holds.
fn value_at(i: usize) -> u64 {
    if i < SUB_COUNT {
        return i as u64;
    }
    let exp = (i / SUB_COUNT) as u32 + SUB_BITS - 1;
    let sub = (i % SUB_COUNT) as u64 | SUB_COUNT as u64;
    // Upper edge: next sub-bucket boundary minus one.
    ((sub + 1) << (exp - SUB_BITS)) - 1
}

/// A fixed-size log-bucketed histogram of `u64` values.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of recorded values (exact sum / count).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound within the
    /// bucket resolution (≈3%) of the true order statistic. `q = 0.5`
    /// is the median, `q = 0.99` the p99. Returns 0 on an empty
    /// histogram; `q ≥ 1` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the order statistic, 1-based, ceil(q·n) clamped to [1, n].
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return value_at(i).min(self.max);
            }
        }
        self.max
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum += other.sum;
    }

    /// The histogram of values recorded *since* `earlier` was taken:
    /// element-wise saturating subtraction of bucket counts, the basis
    /// of registry-snapshot deltas (before/after a workload in one
    /// call). Because exact min/max of the delta window are not
    /// recoverable from two cumulative snapshots, they are
    /// re-approximated from the lowest/highest non-empty delta bucket
    /// (within the ≈3% bucket resolution); quantiles and mean stay as
    /// accurate as any bucketed answer.
    pub fn delta_since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        let mut lo = None;
        let mut hi = 0usize;
        for (i, (a, b)) in self.counts.iter().zip(&earlier.counts).enumerate() {
            let d = a.saturating_sub(*b);
            out.counts[i] = d;
            if d > 0 {
                lo.get_or_insert(i);
                hi = i;
            }
        }
        out.total = self.total.saturating_sub(earlier.total);
        out.sum = self.sum.saturating_sub(earlier.sum);
        if let Some(lo) = lo {
            // Lower edge of the lowest bucket, upper edge of the highest.
            out.min = if lo == 0 { 0 } else { value_at(lo - 1) + 1 };
            out.max = value_at(hi).min(self.max);
        }
        out
    }
}

/// A shared, lock-free histogram: the registry's histogram cell.
///
/// Recording is a handful of relaxed atomic RMWs (bucket increment,
/// running total/sum adds, `fetch_min`/`fetch_max`), so any number of
/// threads record concurrently without coordination. `snapshot()` reads
/// the buckets without stopping writers; under concurrent recording the
/// snapshot is a *consistent-enough* cut — bucket counts are summed as
/// read and the total is derived from them, so quantiles are always
/// self-consistent, while `sum`/`min`/`max` may trail by in-flight
/// records (the usual snapshot-on-read contract).
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (lock-free, relaxed ordering).
    pub fn record(&self, value: u64) {
        self.counts[index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Materializes an owned [`LatencyHistogram`] without stopping
    /// writers.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        let mut total = 0u64;
        for (slot, cell) in out.counts.iter_mut().zip(self.counts.iter()) {
            let c = cell.load(Relaxed);
            *slot = c;
            total += c;
        }
        out.total = total;
        out.sum = self.sum.load(Relaxed) as u128;
        if total > 0 {
            let min = self.min.load(Relaxed);
            out.min = if min == u64::MAX { 0 } else { min };
            out.max = self.max.load(Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.len(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert!((h.mean() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn index_is_monotone_and_value_at_bounds_bucket() {
        let mut prev = 0usize;
        for shift in 0..50u32 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off * (1 << shift) / 7;
                let i = index(v);
                assert!(i >= prev, "index not monotone at {v}");
                prev = i;
                let upper = value_at(i);
                assert!(upper >= v, "bucket upper edge {upper} < value {v}");
                // Relative error of the representative is bounded.
                assert!(
                    (upper - v) as f64 <= v as f64 / 16.0 + 1.0,
                    "error too large: {v} -> {upper}"
                );
            }
        }
    }

    #[test]
    fn quantiles_track_a_sorted_oracle_within_resolution() {
        // Deterministic pseudo-random values across 5 decades.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut vals = Vec::new();
        let mut h = LatencyHistogram::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 10_000_000;
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let want = vals[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            assert!(
                got >= want * 0.999 && got <= want * 1.04 + 32.0,
                "q={q}: got {got}, oracle {want}"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [5u64, 900, 12_345, 7, 1_000_000, 64] {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), all.len());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.min(), all.min());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn atomic_matches_owned_recording() {
        let ah = AtomicHistogram::new();
        let mut oh = LatencyHistogram::new();
        let mut x: u64 = 42;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 1_000_000;
            ah.record(v);
            oh.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.len(), oh.len());
        assert_eq!(snap.min(), oh.min());
        assert_eq!(snap.max(), oh.max());
        assert_eq!(snap.mean(), oh.mean());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), oh.quantile(q));
        }
    }

    #[test]
    fn atomic_concurrent_total_is_exact() {
        use std::sync::Arc;
        let ah = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ah = Arc::clone(&ah);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        ah.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ah.snapshot().len(), 40_000);
    }

    #[test]
    fn delta_since_recovers_the_window() {
        let mut before = LatencyHistogram::new();
        for v in [10u64, 100, 1_000] {
            before.record(v);
        }
        let mut after = before.clone();
        for v in [20u64, 200, 2_000, 20_000] {
            after.record(v);
        }
        let d = after.delta_since(&before);
        assert_eq!(d.len(), 4);
        // Bucketed min/max bracket the true window extremes within
        // resolution.
        assert!(d.min() <= 20 && d.max() >= 20_000 / 33 * 32);
        let mut want = LatencyHistogram::new();
        for v in [20u64, 200, 2_000, 20_000] {
            want.record(v);
        }
        // Quantiles of the delta match direct recording (q=1 would
        // report the bucket edge rather than the exact max, so stop at
        // p99).
        for q in [0.25f64, 0.5, 0.75, 0.99] {
            assert_eq!(d.quantile(q), want.quantile(q));
        }
    }
}
