//! Process-wide observability for the PR-tree stack.
//!
//! The paper this workspace reproduces (Arge et al., SIGMOD 2004)
//! evaluates everything through I/O and latency accounting; this crate
//! makes that accounting a first-class runtime layer instead of
//! per-crate ad-hoc structs:
//!
//! * [`registry`] — named, labeled counters/gauges/histograms backed by
//!   sharded atomics; lock-free hot-path recording, snapshot-on-read,
//!   one-call before/after deltas ([`RegistrySnapshot::delta_since`]).
//! * [`hist`] — the HDR-style [`LatencyHistogram`] (promoted from
//!   `pr_bench::hist`) plus its shared-writer [`AtomicHistogram`] form.
//! * [`events`] — a bounded lifecycle event ring (WAL rotate,
//!   group-commit flush, memtable seal, merge start/commit, compaction,
//!   store commit, scrub, cache-epoch retirement) readable without
//!   stopping writers.
//! * [`export`] — Prometheus-style text and versioned JSON renderings
//!   of snapshots, surfaced by `prtree stats --json`, `prtree events`,
//!   and `--metrics-file`.
//! * [`trace`] — the sampling span tracer: per-operation phase
//!   timelines ([`SpanCtx`]) across all four layers, a slowest-N
//!   flight recorder, and a Chrome-trace-event exporter (`prtree
//!   query --explain`, `prtree slow`, `ingest --trace-file`).
//! * [`json`] — the workspace's single hand-rolled JSON encoder.
//!
//! Every other crate records into the process-wide [`global()`]
//! registry and [`events()`] ring through handles cached in a
//! `OnceLock` catalog (see e.g. `pr_em::obs`). Existing public stats
//! types (`IoStats`, `QueryStats`, `LiveStats`) remain thin views:
//! exact per-instance or per-call numbers, while the registry holds the
//! process-wide running totals.

pub mod events;
pub mod export;
pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use events::{Event, EventLog, EventRing};
pub use export::{
    event_json, metric_json, prometheus_text, snapshot_json, snapshot_json_full, SCHEMA_VERSION,
};
pub use hist::{AtomicHistogram, LatencyHistogram};
pub use registry::{
    global, recording, set_recording, Counter, Gauge, Histogram, MetricSnapshot, MetricValue,
    Registry, RegistrySnapshot,
};
pub use trace::{
    ambient_span, chrome_trace_json, configure_recorder, recorder, slow_traces_json, trace_json,
    AmbientScope, AmbientSpan, FlightRecorder, LevelCounters, Span, SpanCtx, SpanId, Trace,
};

/// The process-wide lifecycle event ring.
pub fn events() -> &'static EventRing {
    events::global()
}

/// Wall-clock milliseconds since the unix epoch (0 if the clock is
/// before the epoch).
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
