//! Bounded lifecycle event ring: timestamped, ordered records of the
//! stack's state transitions — WAL rotations, group-commit flushes,
//! memtable seals, merge start/commit, compactions, store commits,
//! scrubs, cache-epoch retirements.
//!
//! # Design
//!
//! Metrics answer *how much*; the event ring answers *when* and *in
//! what order*. It is a fixed-capacity `VecDeque` behind a mutex:
//! lifecycle events are rare (per flush/seal/merge, never per record),
//! so a short critical section costs nothing next to the fsync or merge
//! the event describes, while keeping one totally-ordered sequence —
//! `seq` is assigned under the lock, so ring order, `seq` order and
//! real commit order agree (the concurrent-metrics test relies on
//! this). When the ring is full the oldest entry is overwritten and a
//! `dropped` counter remembers how much history was lost; readers
//! ([`EventRing::snapshot`]) copy the buffer without stopping writers.
//!
//! Event `kind`s are `&'static str` tags (`"merge_commit"`,
//! `"wal_rotate"`, …); `detail` is a short free-form payload
//! (`"cut_seq=1024 pages=77"`), and `duration_us` is attached for
//! events that describe a span (merge, scrub, flush) rather than an
//! instant.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::registry::recording;

/// Default capacity of the process-wide ring.
const DEFAULT_CAPACITY: usize = 4096;

/// One lifecycle event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Ring-assigned sequence number (monotone, starts at 0).
    pub seq: u64,
    /// Wall-clock time (ms since the unix epoch).
    pub unix_ms: u64,
    /// Event tag (`"merge_commit"`, `"wal_rotate"`, …).
    pub kind: &'static str,
    /// Short free-form payload (`"cut_seq=1024 pages=77"`).
    pub detail: String,
    /// Span length for events describing a duration, in microseconds.
    pub duration_us: Option<u64>,
}

struct Inner {
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, overwrite-oldest ring of [`Event`]s.
pub struct EventRing {
    cap: usize,
    inner: Mutex<Inner>,
}

/// A point-in-time copy of the ring.
#[derive(Clone)]
pub struct EventLog {
    /// Events in ring (= seq = commit) order, oldest first.
    pub events: Vec<Event>,
    /// How many older events were overwritten before this snapshot.
    pub dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        EventRing {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(cap.clamp(1, 1024)),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records an instantaneous event (no-op while recording is
    /// disabled).
    pub fn emit(&self, kind: &'static str, detail: impl Into<String>) {
        self.push(kind, detail.into(), None);
    }

    /// Records an event describing a span of `dur`.
    pub fn emit_timed(&self, kind: &'static str, detail: impl Into<String>, dur: Duration) {
        self.push(kind, detail.into(), Some(dur.as_micros() as u64));
    }

    fn push(&self, kind: &'static str, detail: String, duration_us: Option<u64>) {
        if !recording() {
            return;
        }
        let unix_ms = crate::now_unix_ms();
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.buf.push_back(Event {
            seq,
            unix_ms,
            kind,
            detail,
            duration_us,
        });
    }

    /// Copies the ring without stopping writers.
    pub fn snapshot(&self) -> EventLog {
        let inner = self.inner.lock().unwrap();
        EventLog {
            events: inner.buf.iter().cloned().collect(),
            dropped: inner.dropped,
        }
    }

    /// Copies only the events with `seq > since` — the incremental
    /// polling form (`prtree events --since SEQ`): feed the largest
    /// seq you have seen and get strictly newer events. `dropped`
    /// counts the events in `(since, oldest retained)` that the ring
    /// overwrote before this call, i.e. the gap an incremental reader
    /// actually missed (0 when the tail is still buffered).
    pub fn snapshot_since(&self, since: u64) -> EventLog {
        let inner = self.inner.lock().unwrap();
        let events: Vec<Event> = inner
            .buf
            .iter()
            .filter(|e| e.seq > since)
            .cloned()
            .collect();
        // First seq the caller wanted vs first seq still retained.
        let oldest_wanted = since + 1;
        let oldest_retained = match inner.buf.front() {
            Some(front) => front.seq,
            None => inner.next_seq,
        };
        EventLog {
            events,
            dropped: oldest_retained.saturating_sub(oldest_wanted),
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide event ring (capacity 4096).
pub fn global() -> &'static EventRing {
    static GLOBAL: OnceLock<EventRing> = OnceLock::new();
    GLOBAL.get_or_init(|| EventRing::new(DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_order_and_seq() {
        let ring = EventRing::new(16);
        ring.emit("a", "first");
        ring.emit_timed("b", "second", Duration::from_micros(42));
        let log = ring.snapshot();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events[0].kind, "a");
        assert_eq!(log.events[0].seq, 0);
        assert_eq!(log.events[1].seq, 1);
        assert_eq!(log.events[1].duration_us, Some(42));
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.emit("tick", format!("i={i}"));
        }
        let log = ring.snapshot();
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.dropped, 6);
        assert_eq!(log.events[0].detail, "i=6");
        assert_eq!(log.events[3].detail, "i=9");
        // Seq keeps counting through drops.
        assert_eq!(log.events[3].seq, 9);
    }

    #[test]
    fn snapshot_since_returns_strictly_newer_events() {
        let ring = EventRing::new(16);
        for i in 0..6 {
            ring.emit("tick", format!("i={i}"));
        }
        let log = ring.snapshot_since(2);
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[0].seq, 3);
        assert_eq!(log.events[2].seq, 5);
        assert_eq!(log.dropped, 0, "nothing missed while fully buffered");
        // Caught-up poller sees nothing new and nothing missed.
        let log = ring.snapshot_since(5);
        assert!(log.events.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn snapshot_since_counts_overwritten_gap() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.emit("tick", format!("i={i}"));
        }
        // Ring holds seqs 6..=9; a poller last saw seq 1, so 2..=5
        // (4 events) were overwritten out from under it.
        let log = ring.snapshot_since(1);
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.events[0].seq, 6);
        assert_eq!(log.dropped, 4);
        // A poller already past the gap misses nothing.
        assert_eq!(ring.snapshot_since(7).dropped, 0);
        assert_eq!(ring.snapshot_since(7).events.len(), 2);
    }

    #[test]
    fn snapshot_since_on_empty_ring() {
        let ring = EventRing::new(4);
        let log = ring.snapshot_since(0);
        assert!(log.events.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn wraparound_seqs_stay_gap_free_under_concurrent_writers() {
        use std::sync::Arc;
        // Capacity far below the write volume: the ring wraps hundreds
        // of times while 4 writers race. Every snapshot must still be
        // a gap-free, strictly increasing seq window, and drops +
        // retained must account for every seq ever assigned.
        let ring = Arc::new(EventRing::new(32));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000 {
                        ring.emit("w", format!("t={t} i={i}"));
                    }
                })
            })
            .collect();
        let snapshotter = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let log = ring.snapshot();
                    for pair in log.events.windows(2) {
                        assert_eq!(
                            pair[1].seq,
                            pair[0].seq + 1,
                            "snapshot must be a gap-free seq window even mid-wrap"
                        );
                    }
                    if let Some(front) = log.events.first() {
                        assert_eq!(
                            log.dropped, front.seq,
                            "dropped count must equal the seqs no longer retained"
                        );
                    }
                    checked += 1;
                }
                checked
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let checked = snapshotter.join().unwrap();
        assert!(checked > 0, "snapshotter must have raced the writers");
        let log = ring.snapshot();
        assert_eq!(log.events.len(), 32);
        assert_eq!(log.dropped, 8_000 - 32);
        assert_eq!(log.events.last().unwrap().seq, 7_999);
    }

    #[test]
    fn wraparound_snapshot_since_stays_consistent_under_writers() {
        use std::sync::Arc;
        // An incremental poller (`--since`-style) racing wrapping
        // writers: events returned are strictly newer than the cursor,
        // gap-free among themselves, and `dropped` exactly covers the
        // seqs between the cursor and the first returned event.
        let ring = Arc::new(EventRing::new(16));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1_500 {
                        ring.emit("w", format!("t={t} i={i}"));
                    }
                })
            })
            .collect();
        let mut cursor = 0u64;
        let mut polls = 0u64;
        loop {
            let log = ring.snapshot_since(cursor);
            for pair in log.events.windows(2) {
                assert_eq!(pair[1].seq, pair[0].seq + 1);
            }
            if let Some(first) = log.events.first() {
                assert!(first.seq > cursor);
                assert_eq!(
                    log.dropped,
                    first.seq - cursor - 1,
                    "dropped must be exactly the overwritten gap"
                );
                cursor = log.events.last().unwrap().seq;
            }
            polls += 1;
            if polls > 16 && ring.snapshot().events.last().map(|e| e.seq) == Some(2_999) {
                break;
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        // Drain the tail: a final incremental poll reaches the end.
        let log = ring.snapshot_since(cursor);
        if let Some(last) = log.events.last() {
            cursor = last.seq;
        }
        assert_eq!(cursor, 2_999);
    }

    #[test]
    fn concurrent_emitters_get_unique_ordered_seqs() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(10_000));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        ring.emit("w", format!("t={t} i={i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let log = ring.snapshot();
        assert_eq!(log.events.len(), 4_000);
        for (i, e) in log.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "ring order must equal seq order");
        }
    }
}
