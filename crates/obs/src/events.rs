//! Bounded lifecycle event ring: timestamped, ordered records of the
//! stack's state transitions — WAL rotations, group-commit flushes,
//! memtable seals, merge start/commit, compactions, store commits,
//! scrubs, cache-epoch retirements.
//!
//! # Design
//!
//! Metrics answer *how much*; the event ring answers *when* and *in
//! what order*. It is a fixed-capacity `VecDeque` behind a mutex:
//! lifecycle events are rare (per flush/seal/merge, never per record),
//! so a short critical section costs nothing next to the fsync or merge
//! the event describes, while keeping one totally-ordered sequence —
//! `seq` is assigned under the lock, so ring order, `seq` order and
//! real commit order agree (the concurrent-metrics test relies on
//! this). When the ring is full the oldest entry is overwritten and a
//! `dropped` counter remembers how much history was lost; readers
//! ([`EventRing::snapshot`]) copy the buffer without stopping writers.
//!
//! Event `kind`s are `&'static str` tags (`"merge_commit"`,
//! `"wal_rotate"`, …); `detail` is a short free-form payload
//! (`"cut_seq=1024 pages=77"`), and `duration_us` is attached for
//! events that describe a span (merge, scrub, flush) rather than an
//! instant.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::registry::recording;

/// Default capacity of the process-wide ring.
const DEFAULT_CAPACITY: usize = 4096;

/// One lifecycle event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Ring-assigned sequence number (monotone, starts at 0).
    pub seq: u64,
    /// Wall-clock time (ms since the unix epoch).
    pub unix_ms: u64,
    /// Event tag (`"merge_commit"`, `"wal_rotate"`, …).
    pub kind: &'static str,
    /// Short free-form payload (`"cut_seq=1024 pages=77"`).
    pub detail: String,
    /// Span length for events describing a duration, in microseconds.
    pub duration_us: Option<u64>,
}

struct Inner {
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, overwrite-oldest ring of [`Event`]s.
pub struct EventRing {
    cap: usize,
    inner: Mutex<Inner>,
}

/// A point-in-time copy of the ring.
#[derive(Clone)]
pub struct EventLog {
    /// Events in ring (= seq = commit) order, oldest first.
    pub events: Vec<Event>,
    /// How many older events were overwritten before this snapshot.
    pub dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        EventRing {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(cap.clamp(1, 1024)),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records an instantaneous event (no-op while recording is
    /// disabled).
    pub fn emit(&self, kind: &'static str, detail: impl Into<String>) {
        self.push(kind, detail.into(), None);
    }

    /// Records an event describing a span of `dur`.
    pub fn emit_timed(&self, kind: &'static str, detail: impl Into<String>, dur: Duration) {
        self.push(kind, detail.into(), Some(dur.as_micros() as u64));
    }

    fn push(&self, kind: &'static str, detail: String, duration_us: Option<u64>) {
        if !recording() {
            return;
        }
        let unix_ms = crate::now_unix_ms();
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.buf.push_back(Event {
            seq,
            unix_ms,
            kind,
            detail,
            duration_us,
        });
    }

    /// Copies the ring without stopping writers.
    pub fn snapshot(&self) -> EventLog {
        let inner = self.inner.lock().unwrap();
        EventLog {
            events: inner.buf.iter().cloned().collect(),
            dropped: inner.dropped,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide event ring (capacity 4096).
pub fn global() -> &'static EventRing {
    static GLOBAL: OnceLock<EventRing> = OnceLock::new();
    GLOBAL.get_or_init(|| EventRing::new(DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_order_and_seq() {
        let ring = EventRing::new(16);
        ring.emit("a", "first");
        ring.emit_timed("b", "second", Duration::from_micros(42));
        let log = ring.snapshot();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events[0].kind, "a");
        assert_eq!(log.events[0].seq, 0);
        assert_eq!(log.events[1].seq, 1);
        assert_eq!(log.events[1].duration_us, Some(42));
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.emit("tick", format!("i={i}"));
        }
        let log = ring.snapshot();
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.dropped, 6);
        assert_eq!(log.events[0].detail, "i=6");
        assert_eq!(log.events[3].detail, "i=9");
        // Seq keeps counting through drops.
        assert_eq!(log.events[3].seq, 9);
    }

    #[test]
    fn concurrent_emitters_get_unique_ordered_seqs() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(10_000));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        ring.emit("w", format!("t={t} i={i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let log = ring.snapshot();
        assert_eq!(log.events.len(), 4_000);
        for (i, e) in log.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "ring order must equal seq order");
        }
    }
}
