//! The global recording switch, exercised in a dedicated test binary:
//! `set_recording` flips process-wide state, so this must not share a
//! process with tests that assume recording is on.

use pr_obs::{events, set_recording, Registry};

#[test]
fn recording_switch_gates_counters_histograms_and_events() {
    let r = Registry::new();
    let c = r.counter("gated_total", "gated");
    let h = r.histogram("gated_us", "gated");
    let ring = events();
    let before = ring.snapshot().events.len();

    set_recording(false);
    c.add(10);
    h.record(10);
    ring.emit("gated_event", "dropped while disabled");
    set_recording(true);

    c.add(1);
    h.record(1);
    ring.emit("gated_event", "recorded while enabled");

    assert_eq!(c.get(), 1);
    assert_eq!(h.snapshot().len(), 1);
    let log = ring.snapshot();
    let gated: Vec<_> = log
        .events
        .iter()
        .skip(before)
        .filter(|e| e.kind == "gated_event")
        .collect();
    assert_eq!(gated.len(), 1);
    assert_eq!(gated[0].detail, "recorded while enabled");
}
