//! Property-based tests for the geometry kernel.

use pr_geom::{mapped, Axis, Item, Point, Rect};
use proptest::prelude::*;

fn arb_rect2() -> impl Strategy<Value = Rect<2>> {
    (
        -1000.0..1000.0f64,
        -1000.0..1000.0f64,
        0.0..100.0f64,
        0.0..100.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::xyxy(x, y, x + w, y + h))
}

fn arb_item2() -> impl Strategy<Value = Item<2>> {
    (arb_rect2(), any::<u32>()).prop_map(|(r, id)| Item::new(r, id))
}

proptest! {
    #[test]
    fn intersection_symmetric(a in arb_rect2(), b in arb_rect2()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn intersection_consistent_with_predicate(a in arb_rect2(), b in arb_rect2()) {
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }

    #[test]
    fn intersection_contained_in_both(a in arb_rect2(), b in arb_rect2()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn mbr_contains_both(a in arb_rect2(), b in arb_rect2()) {
        let m = a.mbr_with(&b);
        prop_assert!(m.contains_rect(&a));
        prop_assert!(m.contains_rect(&b));
        // MBR is minimal: every corner coordinate comes from a or b.
        for d in 0..2 {
            prop_assert!(m.lo_at(d) == a.lo_at(d) || m.lo_at(d) == b.lo_at(d));
            prop_assert!(m.hi_at(d) == a.hi_at(d) || m.hi_at(d) == b.hi_at(d));
        }
    }

    #[test]
    fn mbr_idempotent_and_commutative(a in arb_rect2(), b in arb_rect2()) {
        prop_assert_eq!(a.mbr_with(&a), a);
        prop_assert_eq!(a.mbr_with(&b), b.mbr_with(&a));
    }

    #[test]
    fn containment_implies_intersection(a in arb_rect2(), b in arb_rect2()) {
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
            prop_assert!(a.area() >= b.area());
        }
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect2(), b in arb_rect2()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        prop_assert!(b.enlargement(&a) >= 0.0);
    }

    #[test]
    fn overlap_bounded_by_min_area(a in arb_rect2(), b in arb_rect2()) {
        let o = a.overlap_area(&b);
        prop_assert!(o >= 0.0);
        prop_assert!(o <= a.area().min(b.area()) + 1e-9);
    }

    #[test]
    fn center_inside(a in arb_rect2()) {
        prop_assert!(a.contains_point(&a.center()));
    }

    #[test]
    fn encode_decode_roundtrip(item in arb_item2()) {
        let mut buf = [0u8; Item::<2>::ENCODED_SIZE];
        item.encode(&mut buf);
        prop_assert_eq!(Item::<2>::decode(&buf), item);
    }

    #[test]
    fn axis_orderings_are_total_and_antisymmetric(
        a in arb_item2(), b in arb_item2(), axis in 0usize..4
    ) {
        use std::cmp::Ordering;
        let axis = Axis(axis);
        let ab = mapped::cmp_items_on_axis(axis, &a, &b);
        let ba = mapped::cmp_items_on_axis(axis, &b, &a);
        prop_assert_eq!(ab, ba.reverse());
        if a.id != b.id {
            prop_assert_ne!(ab, Ordering::Equal);
        }
        let eab = mapped::cmp_extreme_on_axis(axis, &a, &b);
        let eba = mapped::cmp_extreme_on_axis(axis, &b, &a);
        prop_assert_eq!(eab, eba.reverse());
    }

    #[test]
    fn extreme_ordering_agrees_with_coordinate(
        a in arb_item2(), b in arb_item2(), axis in 0usize..4
    ) {
        use std::cmp::Ordering;
        let axis = Axis(axis);
        let (ca, cb) = (axis.coord(&a.rect), axis.coord(&b.rect));
        if ca != cb {
            let expect = if axis.is_min_side::<2>() {
                ca.total_cmp(&cb)
            } else {
                cb.total_cmp(&ca)
            };
            prop_assert_eq!(mapped::cmp_extreme_on_axis(axis, &a, &b), expect);
            prop_assert_ne!(expect, Ordering::Equal);
        }
    }

    #[test]
    fn translated_preserves_measures(a in arb_rect2(), dx in -50.0..50.0f64, dy in -50.0..50.0f64) {
        let t = a.translated([dx, dy]);
        prop_assert!((t.area() - a.area()).abs() < 1e-6);
        prop_assert!((t.margin() - a.margin()).abs() < 1e-9);
    }

    #[test]
    fn point_queries_match_degenerate_rect_queries(a in arb_rect2(), x in -1100.0..1100.0f64, y in -1100.0..1100.0f64) {
        let p = Point::new([x, y]);
        prop_assert_eq!(a.contains_point(&p), a.intersects(&Rect::from_point(p)));
    }
}
