//! Property tests proving the SoA batch kernels bit-identical to the
//! scalar `Rect` predicates on arbitrary rectangle columns.

use pr_geom::batch::{
    contains_mask, contains_mask_scalar, gather_rect, intersects_count, intersects_mask,
    intersects_mask_scalar, min_dist2_batch, min_dist2_batch_scalar,
};
use pr_geom::{Point, Rect};
use proptest::prelude::*;

/// Raw per-rectangle tuples: lo corner plus non-negative extents, so
/// every generated rectangle is valid (possibly degenerate).
type RawRects = Vec<([f64; 2], [f64; 2])>;

fn arb_columns(max: usize) -> impl Strategy<Value = RawRects> {
    prop::collection::vec(
        (
            -100.0..100.0f64,
            -100.0..100.0f64,
            0.0..30.0f64,
            0.0..30.0f64,
        ),
        0..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, w, h)| ([x, y], [x + w, y + h]))
            .collect()
    })
}

fn to_columns(raw: &RawRects) -> ([Vec<f64>; 2], [Vec<f64>; 2]) {
    let mut lo = [Vec::new(), Vec::new()];
    let mut hi = [Vec::new(), Vec::new()];
    for (l, h) in raw {
        for d in 0..2 {
            lo[d].push(l[d]);
            hi[d].push(h[d]);
        }
    }
    (lo, hi)
}

fn arb_query() -> impl Strategy<Value = Rect<2>> {
    (
        -120.0..120.0f64,
        -120.0..120.0f64,
        0.0..80.0f64,
        0.0..80.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::xyxy(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn intersects_mask_is_bit_identical(raw in arb_columns(200), q in arb_query()) {
        let (lo, hi) = to_columns(&raw);
        let (lo, hi): ([&[f64]; 2], [&[f64]; 2]) = ([&lo[0], &lo[1]], [&hi[0], &hi[1]]);
        let mut fast = vec![0u8; raw.len()];
        let mut slow = vec![7u8; raw.len()];
        intersects_mask(&lo, &hi, &q, &mut fast);
        intersects_mask_scalar(&lo, &hi, &q, &mut slow);
        prop_assert_eq!(&fast, &slow);
        // And the scalar twin really is the Rect predicate.
        for (i, m) in slow.iter().enumerate() {
            prop_assert_eq!(*m == 1, gather_rect(&lo, &hi, i).intersects(&q));
        }
        // The counting kernel is the mask's popcount.
        let want: u64 = slow.iter().map(|&m| m as u64).sum();
        prop_assert_eq!(intersects_count(&lo, &hi, raw.len(), &q), want);
    }

    #[test]
    fn contains_mask_is_bit_identical(raw in arb_columns(200), q in arb_query()) {
        let (lo, hi) = to_columns(&raw);
        let (lo, hi): ([&[f64]; 2], [&[f64]; 2]) = ([&lo[0], &lo[1]], [&hi[0], &hi[1]]);
        let mut fast = vec![0u8; raw.len()];
        let mut slow = vec![7u8; raw.len()];
        contains_mask(&lo, &hi, &q, &mut fast);
        contains_mask_scalar(&lo, &hi, &q, &mut slow);
        prop_assert_eq!(&fast, &slow);
        for (i, m) in slow.iter().enumerate() {
            prop_assert_eq!(*m == 1, q.contains_rect(&gather_rect(&lo, &hi, i)));
        }
    }

    #[test]
    fn min_dist2_batch_is_bit_identical(
        raw in arb_columns(200),
        px in -150.0..150.0f64,
        py in -150.0..150.0f64,
    ) {
        let (lo, hi) = to_columns(&raw);
        let (lo, hi): ([&[f64]; 2], [&[f64]; 2]) = ([&lo[0], &lo[1]], [&hi[0], &hi[1]]);
        let p = Point::new([px, py]);
        let mut fast = vec![0.0f64; raw.len()];
        let mut slow = vec![1.0f64; raw.len()];
        min_dist2_batch(&lo, &hi, &p, &mut fast);
        min_dist2_batch_scalar(&lo, &hi, &p, &mut slow);
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            prop_assert_eq!(f.to_bits(), s.to_bits(), "element {}", i);
            prop_assert_eq!(s.to_bits(), gather_rect(&lo, &hi, i).min_dist2(&p).to_bits());
        }
    }

    /// Degenerate rectangles (points and segments) hit the boundary
    /// cases of the branch-free clamp; exercise them densely.
    #[test]
    fn kernels_agree_on_point_sets(
        pts in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 0..150),
        q in arb_query(),
    ) {
        let n = pts.len();
        let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
        let lo: [&[f64]; 2] = [&xs, &ys];
        let hi: [&[f64]; 2] = [&xs, &ys];
        let mut fast = vec![0u8; n];
        let mut slow = vec![7u8; n];
        intersects_mask(&lo, &hi, &q, &mut fast);
        intersects_mask_scalar(&lo, &hi, &q, &mut slow);
        prop_assert_eq!(&fast, &slow);
        let p = Point::new([q.lo_at(0), q.lo_at(1)]);
        let mut dfast = vec![0.0f64; n];
        let mut dslow = vec![1.0f64; n];
        min_dist2_batch(&lo, &hi, &p, &mut dfast);
        min_dist2_batch_scalar(&lo, &hi, &p, &mut dslow);
        for (f, s) in dfast.iter().zip(&dslow) {
            prop_assert_eq!(f.to_bits(), s.to_bits());
        }
    }
}
