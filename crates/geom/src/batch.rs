//! SoA batch predicate kernels for the decode-free query engine.
//!
//! A node of `n` rectangles is handed to these kernels as `2·D`
//! structure-of-arrays coordinate columns — `lo[d][..n]` and `hi[d][..n]`
//! — instead of `n` [`Rect`] structs. Each kernel is a dimension-major,
//! branch-free loop: one pass per dimension over a contiguous `f64`
//! column, combining into a byte mask (or distance accumulator) with
//! `&`/`max` instead of `if`/early-`return`. That shape is what lets the
//! compiler auto-vectorize the per-node scan, which dominates query CPU
//! once the paper's fanout (113 entries per 4KB node) is fixed and all
//! internal nodes are cached.
//!
//! Every kernel has a scalar reference twin (`*_scalar`) that calls the
//! corresponding [`Rect`] predicate per element. The twins exist so
//! property tests can prove the vector forms **bit-identical** to the
//! scalar geometry — same booleans, same `f64` bits for distances — which
//! is what allows the query engine to swap them in without perturbing
//! results, tie-breaks, or I/O accounting.

use crate::point::Point;
use crate::rect::Rect;

/// Gathers element `i` of the coordinate columns back into a [`Rect`]
/// (the scalar twins and [`crate::Rect`]-consuming callers use this).
#[inline]
pub fn gather_rect<const D: usize>(lo: &[&[f64]; D], hi: &[&[f64]; D], i: usize) -> Rect<D> {
    Rect::new(
        std::array::from_fn(|d| lo[d][i]),
        std::array::from_fn(|d| hi[d][i]),
    )
}

#[inline]
fn check_columns<const D: usize>(lo: &[&[f64]; D], hi: &[&[f64]; D], n: usize) {
    for d in 0..D {
        debug_assert_eq!(lo[d].len(), n, "lo column {d} length");
        debug_assert_eq!(hi[d].len(), n, "hi column {d} length");
    }
}

/// Writes `mask[i] = 1` iff rectangle `i` intersects `query` (closed
/// semantics: touching counts, exactly [`Rect::intersects`]), else `0`.
///
/// `mask.len()` is the element count `n`; every column must hold at
/// least `n` coordinates (checked in debug builds).
pub fn intersects_mask<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    query: &Rect<D>,
    mask: &mut [u8],
) {
    let n = mask.len();
    check_columns(lo, hi, n);
    // One fused pass: `D` is a compile-time constant, so the inner loop
    // unrolls and each element does 2·D compares and one mask store —
    // less memory traffic than a pass per dimension.
    let lo_cols: [&[f64]; D] = std::array::from_fn(|d| &lo[d][..n]);
    let hi_cols: [&[f64]; D] = std::array::from_fn(|d| &hi[d][..n]);
    for (i, m) in mask.iter_mut().enumerate() {
        let mut keep = 1u8;
        for d in 0..D {
            keep &= ((lo_cols[d][i] <= query.hi_at(d)) & (query.lo_at(d) <= hi_cols[d][i])) as u8;
        }
        *m = keep;
    }
}

/// Counts rectangles intersecting `query` without materializing a mask
/// or touching pointer data — the leaf kernel of counting window
/// queries. Exactly `intersects_mask(..).count_ones()`.
pub fn intersects_count<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    n: usize,
    query: &Rect<D>,
) -> u64 {
    check_columns(lo, hi, n);
    let lo_cols: [&[f64]; D] = std::array::from_fn(|d| &lo[d][..n]);
    let hi_cols: [&[f64]; D] = std::array::from_fn(|d| &hi[d][..n]);
    let mut count = 0u64;
    for i in 0..n {
        let mut keep = 1u8;
        for d in 0..D {
            keep &= ((lo_cols[d][i] <= query.hi_at(d)) & (query.lo_at(d) <= hi_cols[d][i])) as u8;
        }
        count += keep as u64;
    }
    count
}

/// Scalar reference for [`intersects_mask`]: per-element
/// [`Rect::intersects`].
pub fn intersects_mask_scalar<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    query: &Rect<D>,
    mask: &mut [u8],
) {
    for (i, m) in mask.iter_mut().enumerate() {
        *m = gather_rect(lo, hi, i).intersects(query) as u8;
    }
}

/// Writes `mask[i] = 1` iff rectangle `i` lies entirely inside `query`
/// (boundary included, exactly `query.contains_rect(rect_i)`), else `0`.
pub fn contains_mask<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    query: &Rect<D>,
    mask: &mut [u8],
) {
    let n = mask.len();
    check_columns(lo, hi, n);
    let lo_cols: [&[f64]; D] = std::array::from_fn(|d| &lo[d][..n]);
    let hi_cols: [&[f64]; D] = std::array::from_fn(|d| &hi[d][..n]);
    for (i, m) in mask.iter_mut().enumerate() {
        let mut keep = 1u8;
        for d in 0..D {
            keep &= ((query.lo_at(d) <= lo_cols[d][i]) & (hi_cols[d][i] <= query.hi_at(d))) as u8;
        }
        *m = keep;
    }
}

/// Scalar reference for [`contains_mask`]: per-element
/// [`Rect::contains_rect`] with `query` as the container.
pub fn contains_mask_scalar<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    query: &Rect<D>,
    mask: &mut [u8],
) {
    for (i, m) in mask.iter_mut().enumerate() {
        *m = query.contains_rect(&gather_rect(lo, hi, i)) as u8;
    }
}

/// Writes `out[i]` = squared Euclidean distance from `p` to rectangle
/// `i` (0 inside), bit-identical to [`Rect::min_dist2`].
///
/// The per-dimension clamp `if c < lo {lo-c} else if c > hi {c-hi} else
/// {0}` becomes the branch-free `max(lo-c, c-hi, 0)`: for a valid
/// rectangle (`lo <= hi`) at most one of the two differences is
/// positive, so the maximum selects the same value — including the
/// `±0.0` cases — and the squares accumulate in the same dimension
/// order, keeping every bit of the result identical.
pub fn min_dist2_batch<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    p: &Point<D>,
    out: &mut [f64],
) {
    let n = out.len();
    check_columns(lo, hi, n);
    let lo_cols: [&[f64]; D] = std::array::from_fn(|d| &lo[d][..n]);
    let hi_cols: [&[f64]; D] = std::array::from_fn(|d| &hi[d][..n]);
    for (i, o) in out.iter_mut().enumerate() {
        // Dimensions accumulate in index order, matching the scalar sum.
        let mut d2 = 0.0;
        for d in 0..D {
            let c = p.coord(d);
            let delta = (lo_cols[d][i] - c).max(c - hi_cols[d][i]).max(0.0);
            d2 += delta * delta;
        }
        *o = d2;
    }
}

/// Scalar reference for [`min_dist2_batch`]: per-element
/// [`Rect::min_dist2`].
pub fn min_dist2_batch_scalar<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    p: &Point<D>,
    out: &mut [f64],
) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = gather_rect(lo, hi, i).min_dist2(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Columns for a tiny fixed node: 4 rectangles in 2-D.
    fn fixture() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        // rects: [0,1]x[0,1], [2,3]x[2,3], [-1,5]x[-1,5], point at (10,10)
        let lo = vec![vec![0.0, 2.0, -1.0, 10.0], vec![0.0, 2.0, -1.0, 10.0]];
        let hi = vec![vec![1.0, 3.0, 5.0, 10.0], vec![1.0, 3.0, 5.0, 10.0]];
        (lo, hi)
    }

    fn cols(v: &[Vec<f64>]) -> [&[f64]; 2] {
        [&v[0], &v[1]]
    }

    #[test]
    fn intersects_matches_scalar_on_fixture() {
        let (lo, hi) = fixture();
        let q = Rect::xyxy(0.5, 0.5, 2.0, 2.0);
        let mut fast = [0u8; 4];
        let mut slow = [9u8; 4];
        intersects_mask(&cols(&lo), &cols(&hi), &q, &mut fast);
        intersects_mask_scalar(&cols(&lo), &cols(&hi), &q, &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast, [1, 1, 1, 0], "touching at 2.0 counts");
    }

    #[test]
    fn contains_matches_scalar_on_fixture() {
        let (lo, hi) = fixture();
        let q = Rect::xyxy(-1.0, -1.0, 5.0, 5.0);
        let mut fast = [0u8; 4];
        let mut slow = [9u8; 4];
        contains_mask(&cols(&lo), &cols(&hi), &q, &mut fast);
        contains_mask_scalar(&cols(&lo), &cols(&hi), &q, &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast, [1, 1, 1, 0], "boundary-touching rects contained");
    }

    #[test]
    fn min_dist2_matches_scalar_bitwise_on_fixture() {
        let (lo, hi) = fixture();
        for p in [
            Point::new([0.5, 0.5]),
            Point::new([1.0, 0.0]),
            Point::new([-3.0, 1.0]),
            Point::new([6.0, 7.0]),
        ] {
            let mut fast = [0.0f64; 4];
            let mut slow = [1.0f64; 4];
            min_dist2_batch(&cols(&lo), &cols(&hi), &p, &mut fast);
            min_dist2_batch_scalar(&cols(&lo), &cols(&hi), &p, &mut slow);
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.to_bits(), s.to_bits(), "p={p:?}");
            }
        }
    }

    #[test]
    fn count_matches_mask_popcount() {
        let (lo, hi) = fixture();
        for q in [
            Rect::xyxy(0.5, 0.5, 2.0, 2.0),
            Rect::xyxy(-10.0, -10.0, 20.0, 20.0),
            Rect::xyxy(50.0, 50.0, 51.0, 51.0),
        ] {
            let mut mask = [0u8; 4];
            intersects_mask(&cols(&lo), &cols(&hi), &q, &mut mask);
            let want: u64 = mask.iter().map(|&m| m as u64).sum();
            assert_eq!(intersects_count(&cols(&lo), &cols(&hi), 4, &q), want);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let lo: [&[f64]; 2] = [&[], &[]];
        let hi: [&[f64]; 2] = [&[], &[]];
        let q = Rect::xyxy(0.0, 0.0, 1.0, 1.0);
        intersects_mask(&lo, &hi, &q, &mut []);
        contains_mask(&lo, &hi, &q, &mut []);
        min_dist2_batch(&lo, &hi, &Point::new([0.0, 0.0]), &mut []);
    }

    #[test]
    fn three_dimensional_kernels() {
        let lo = [vec![0.0, 4.0], vec![0.0, 4.0], vec![0.0, 4.0]];
        let hi = [vec![1.0, 5.0], vec![1.0, 5.0], vec![1.0, 5.0]];
        let cols_lo: [&[f64]; 3] = [&lo[0], &lo[1], &lo[2]];
        let cols_hi: [&[f64]; 3] = [&hi[0], &hi[1], &hi[2]];
        let q: Rect<3> = Rect::new([0.5, 0.5, 0.5], [4.5, 4.5, 4.5]);
        let mut mask = [0u8; 2];
        intersects_mask(&cols_lo, &cols_hi, &q, &mut mask);
        assert_eq!(mask, [1, 1]);
        let mut d2 = [0.0f64; 2];
        let p = Point::new([2.0, 2.0, 2.0]);
        min_dist2_batch(&cols_lo, &cols_hi, &p, &mut d2);
        let mut want = [0.0f64; 2];
        min_dist2_batch_scalar(&cols_lo, &cols_hi, &p, &mut want);
        assert_eq!(d2[0].to_bits(), want[0].to_bits());
        assert_eq!(d2[1].to_bits(), want[1].to_bits());
        assert_eq!(d2, [3.0, 12.0]); // (2-1)² × 3 and (4-2)² × 3
    }
}
