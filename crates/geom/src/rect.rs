//! `D`-dimensional axis-parallel rectangles (hyper-rectangles).

use crate::point::Point;
use std::fmt;

/// An axis-parallel `D`-dimensional rectangle `[lo, hi]`.
///
/// Rectangles are closed: a rectangle contains its boundary, and two
/// rectangles that merely touch *do* intersect. This matches the window
/// query semantics of the paper ("retrieve all rectangles that intersect
/// Q") and of Guttman's original R-tree.
///
/// Degenerate rectangles (points, segments) are allowed — the paper's
/// CLUSTER and worst-case datasets are point sets, and its TIGER inputs
/// contain bounding boxes of axis-parallel segments.
#[derive(Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    lo: [f64; D],
    hi: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from its lower and upper corners.
    ///
    /// # Panics
    /// Panics (debug builds only) if any `lo[i] > hi[i]` or a coordinate is
    /// non-finite; use [`Rect::try_new`] for fallible construction.
    #[inline]
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        let r = Rect { lo, hi };
        debug_assert!(r.is_valid(), "invalid rect: {r:?}");
        r
    }

    /// Fallible constructor: returns `None` if the corners are out of order
    /// or any coordinate is non-finite.
    pub fn try_new(lo: [f64; D], hi: [f64; D]) -> Option<Self> {
        let r = Rect { lo, hi };
        r.is_valid().then_some(r)
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point<D>) -> Self {
        Rect { lo: p.0, hi: p.0 }
    }

    /// Axis-parallel square (hyper-cube) centered at `center` with side
    /// length `side`.
    pub fn centered_cube(center: Point<D>, side: f64) -> Self {
        let h = side / 2.0;
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = center.0[i] - h;
            hi[i] = center.0[i] + h;
        }
        Rect::new(lo, hi)
    }

    /// Rectangle centered at `center` with per-dimension extents `sides`.
    pub fn centered(center: Point<D>, sides: [f64; D]) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = center.0[i] - sides[i] / 2.0;
            hi[i] = center.0[i] + sides[i] / 2.0;
        }
        Rect::new(lo, hi)
    }

    /// The "empty" rectangle: the identity of [`Rect::mbr_with`]. Its `lo`
    /// is `+inf` and `hi` is `-inf`, so it intersects and contains nothing.
    pub const EMPTY: Self = Rect {
        lo: [f64::INFINITY; D],
        hi: [f64::NEG_INFINITY; D],
    };

    /// True if this is the [`Rect::EMPTY`] sentinel (or any inverted box).
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.lo[i] > self.hi[i])
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64; D] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64; D] {
        &self.hi
    }

    /// Lower coordinate in dimension `dim`.
    #[inline]
    pub fn lo_at(&self, dim: usize) -> f64 {
        self.lo[dim]
    }

    /// Upper coordinate in dimension `dim`.
    #[inline]
    pub fn hi_at(&self, dim: usize) -> f64 {
        self.hi[dim]
    }

    /// Extent (side length) in dimension `dim`.
    #[inline]
    pub fn extent(&self, dim: usize) -> f64 {
        self.hi[dim] - self.lo[dim]
    }

    /// Center point.
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (ci, (l, h)) in c.iter_mut().zip(self.lo.iter().zip(&self.hi)) {
            *ci = (l + h) / 2.0;
        }
        Point(c)
    }

    /// True when corners are ordered and all coordinates finite.
    pub fn is_valid(&self) -> bool {
        (0..D).all(|i| self.lo[i] <= self.hi[i] && self.lo[i].is_finite() && self.hi[i].is_finite())
    }

    /// Closed-rectangle intersection test (touching counts).
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        for i in 0..D {
            if self.lo[i] > other.hi[i] || other.lo[i] > self.hi[i] {
                return false;
            }
        }
        true
    }

    /// True if `other` lies entirely inside `self` (boundary included).
    #[inline]
    pub fn contains_rect(&self, other: &Self) -> bool {
        for i in 0..D {
            if other.lo[i] < self.lo[i] || other.hi[i] > self.hi[i] {
                return false;
            }
        }
        true
    }

    /// True if the point lies inside `self` (boundary included).
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        for i in 0..D {
            if p.0[i] < self.lo[i] || p.0[i] > self.hi[i] {
                return false;
            }
        }
        true
    }

    /// Geometric intersection, or `None` if disjoint.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = self.lo[i].max(other.lo[i]);
            hi[i] = self.hi[i].min(other.hi[i]);
            if lo[i] > hi[i] {
                return None;
            }
        }
        Some(Rect { lo, hi })
    }

    /// Minimal bounding rectangle of `self` and `other`.
    ///
    /// [`Rect::EMPTY`] is the identity element, which lets callers fold a
    /// sequence of rectangles without a special first-element case.
    #[inline]
    pub fn mbr_with(&self, other: &Self) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = self.lo[i].min(other.lo[i]);
            hi[i] = self.hi[i].max(other.hi[i]);
        }
        Rect { lo, hi }
    }

    /// Minimal bounding rectangle of an iterator of rectangles
    /// ([`Rect::EMPTY`] for an empty iterator).
    pub fn mbr_of<'a>(rects: impl IntoIterator<Item = &'a Rect<D>>) -> Self {
        rects
            .into_iter()
            .fold(Rect::EMPTY, |acc, r| acc.mbr_with(r))
    }

    /// `D`-dimensional volume ("area" in the paper's 2-D setting).
    /// The empty sentinel has area 0.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|i| self.hi[i] - self.lo[i]).product()
    }

    /// Surface measure used by R* heuristics: the sum of extents
    /// (perimeter/2 in 2-D).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|i| self.hi[i] - self.lo[i]).sum()
    }

    /// Area of overlap with `other` (0 when disjoint).
    pub fn overlap_area(&self, other: &Self) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// How much `self`'s area grows if enlarged to also cover `other`.
    /// This is Guttman's insertion cost.
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.mbr_with(other).area() - self.area()
    }

    /// Translates the rectangle by `delta`.
    pub fn translated(&self, delta: [f64; D]) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..D {
            lo[i] += delta[i];
            hi[i] += delta[i];
        }
        Rect::new(lo, hi)
    }

    /// Squared Euclidean distance from `p` to the closest point of the
    /// rectangle (0 if `p` is inside). The branch-and-bound pruning
    /// measure of best-first nearest-neighbor search.
    pub fn min_dist2(&self, p: &Point<D>) -> f64 {
        let mut d2 = 0.0;
        for i in 0..D {
            let c = p.0[i];
            let delta = if c < self.lo[i] {
                self.lo[i] - c
            } else if c > self.hi[i] {
                c - self.hi[i]
            } else {
                0.0
            };
            d2 += delta * delta;
        }
        d2
    }

    /// Euclidean distance from `p` to the rectangle (0 if inside).
    pub fn min_dist(&self, p: &Point<D>) -> f64 {
        self.min_dist2(p).sqrt()
    }

    /// The longest extent over all dimensions divided by the shortest;
    /// `inf` for degenerate rectangles. (The ASPECT datasets fix this.)
    pub fn aspect_ratio(&self) -> f64 {
        let mut longest = f64::NEG_INFINITY;
        let mut shortest = f64::INFINITY;
        for i in 0..D {
            let e = self.extent(i);
            longest = longest.max(e);
            shortest = shortest.min(e);
        }
        if shortest == 0.0 {
            f64::INFINITY
        } else {
            longest / shortest
        }
    }
}

impl<const D: usize> fmt::Debug for Rect<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect[{:?} .. {:?}]", self.lo, self.hi)
    }
}

/// Convenience 2-D constructor matching the paper's
/// `((xmin, ymin), (xmax, ymax))` notation.
impl Rect<2> {
    /// Builds a 2-D rectangle from `xmin, ymin, xmax, ymax`.
    pub fn xyxy(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        Rect::new([xmin, ymin], [xmax, ymax])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Rect<2> {
        Rect::xyxy(xmin, ymin, xmax, ymax)
    }

    #[test]
    fn try_new_rejects_inverted_and_nonfinite() {
        assert!(Rect::try_new([0.0, 0.0], [1.0, 1.0]).is_some());
        assert!(Rect::try_new([2.0, 0.0], [1.0, 1.0]).is_none());
        assert!(Rect::try_new([f64::NAN, 0.0], [1.0, 1.0]).is_none());
        assert!(Rect::try_new([0.0], [f64::INFINITY]).is_none());
    }

    #[test]
    fn point_rect_is_valid_and_degenerate() {
        let p = Rect::from_point(Point::new([3.0, 4.0]));
        assert!(p.is_valid());
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.center().coords(), &[3.0, 4.0]);
        assert!(p.contains_point(&Point::new([3.0, 4.0])));
    }

    #[test]
    fn intersection_basic() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r(1.0, 1.0, 2.0, 2.0));
        assert_eq!(a.overlap_area(&b), 1.0);
    }

    #[test]
    fn touching_rectangles_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0); // shares an edge
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
        let c = r(1.0, 1.0, 2.0, 2.0); // shares a corner
        assert!(a.intersects(&c));
    }

    #[test]
    fn disjoint_rectangles() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.5, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer), "containment is reflexive");
        assert!(outer.contains_point(&Point::new([0.0, 10.0])), "boundary");
        assert!(!outer.contains_point(&Point::new([-0.1, 5.0])));
    }

    #[test]
    fn mbr_and_empty_identity() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let e = Rect::<2>::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.mbr_with(&a), a);
        assert_eq!(a.mbr_with(&e), a);
        let b = r(2.0, -1.0, 3.0, 0.5);
        assert_eq!(a.mbr_with(&b), r(0.0, -1.0, 3.0, 1.0));
        assert_eq!(Rect::mbr_of([&a, &b]), r(0.0, -1.0, 3.0, 1.0));
        assert!(Rect::<2>::mbr_of([]).is_empty());
    }

    #[test]
    fn area_margin_enlargement() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(Rect::<2>::EMPTY.area(), 0.0);
        assert_eq!(Rect::<2>::EMPTY.margin(), 0.0);
        let b = r(4.0, 0.0, 5.0, 1.0);
        // mbr = (0,0)-(5,3), area 15; enlargement = 15 - 6 = 9
        assert_eq!(a.enlargement(&b), 9.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn centered_constructors() {
        let c = Rect::centered_cube(Point::new([1.0, 1.0]), 2.0);
        assert_eq!(c, r(0.0, 0.0, 2.0, 2.0));
        let s = Rect::centered(Point::new([0.0, 0.0]), [4.0, 2.0]);
        assert_eq!(s, r(-2.0, -1.0, 2.0, 1.0));
        assert_eq!(s.aspect_ratio(), 2.0);
    }

    #[test]
    fn translation() {
        let a = r(0.0, 0.0, 1.0, 1.0).translated([5.0, -1.0]);
        assert_eq!(a, r(5.0, -1.0, 6.0, 0.0));
    }

    #[test]
    fn aspect_ratio_degenerate() {
        let seg = r(0.0, 0.0, 1.0, 0.0);
        assert_eq!(seg.aspect_ratio(), f64::INFINITY);
    }

    #[test]
    fn min_dist_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // Inside → 0.
        assert_eq!(a.min_dist2(&Point::new([1.0, 1.0])), 0.0);
        // On the boundary → 0.
        assert_eq!(a.min_dist2(&Point::new([2.0, 1.0])), 0.0);
        // Left of the box: pure x distance.
        assert_eq!(a.min_dist(&Point::new([-3.0, 1.0])), 3.0);
        // Diagonal corner: 3-4-5.
        assert_eq!(a.min_dist(&Point::new([5.0, 6.0])), 5.0);
    }

    #[test]
    fn three_dimensional_volume() {
        let c: Rect<3> = Rect::new([0.0, 0.0, 0.0], [2.0, 3.0, 4.0]);
        assert_eq!(c.area(), 24.0);
        assert_eq!(c.margin(), 9.0);
        assert_eq!(c.extent(2), 4.0);
    }
}
