//! Labeled rectangles — the input records of every index in this workspace.

use crate::rect::Rect;
use std::fmt;

/// A data rectangle with a payload id.
///
/// This mirrors the paper's input record layout exactly: in 2-D it is
/// 4 × 8-byte coordinates plus a 4-byte "pointer to the original object",
/// i.e. 36 bytes (§3.1). The id doubles as the deterministic tie-breaker
/// for all coordinate orderings.
#[derive(Clone, Copy, PartialEq)]
pub struct Item<const D: usize> {
    /// The (bounding) rectangle stored in the index.
    pub rect: Rect<D>,
    /// Opaque payload identifier, unique per dataset.
    pub id: u32,
}

impl<const D: usize> Item<D> {
    /// Creates a labeled rectangle.
    pub fn new(rect: Rect<D>, id: u32) -> Self {
        Item { rect, id }
    }

    /// Size in bytes of the on-disk encoding: `2 * D` f64 coordinates plus
    /// the u32 id (36 bytes for `D = 2`, as in the paper).
    pub const ENCODED_SIZE: usize = 2 * D * 8 + 4;

    /// Encodes into little-endian bytes. `buf` must be exactly
    /// [`Self::ENCODED_SIZE`] long.
    pub fn encode(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        let mut off = 0;
        for i in 0..D {
            buf[off..off + 8].copy_from_slice(&self.rect.lo_at(i).to_le_bytes());
            off += 8;
        }
        for i in 0..D {
            buf[off..off + 8].copy_from_slice(&self.rect.hi_at(i).to_le_bytes());
            off += 8;
        }
        buf[off..off + 4].copy_from_slice(&self.id.to_le_bytes());
    }

    /// Decodes from little-endian bytes written by [`Item::encode`].
    pub fn decode(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::ENCODED_SIZE);
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        let mut off = 0;
        for v in lo.iter_mut() {
            *v = f64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            off += 8;
        }
        for v in hi.iter_mut() {
            *v = f64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            off += 8;
        }
        let id = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
        Item {
            rect: Rect::new(lo, hi),
            id,
        }
    }
}

impl<const D: usize> fmt::Debug for Item<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item#{} {:?}", self.id, self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_size_matches_paper() {
        // §3.1: "we used 36 bytes to represent each input rectangle".
        assert_eq!(Item::<2>::ENCODED_SIZE, 36);
        assert_eq!(Item::<3>::ENCODED_SIZE, 52);
        assert_eq!(Item::<1>::ENCODED_SIZE, 20);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let item = Item::new(Rect::xyxy(-1.5, 2.25, 3.75, 10.0), 0xDEAD_BEEF);
        let mut buf = [0u8; Item::<2>::ENCODED_SIZE];
        item.encode(&mut buf);
        let back = Item::<2>::decode(&buf);
        assert_eq!(back, item);
    }

    #[test]
    fn encode_decode_3d() {
        let item = Item::new(Rect::<3>::new([0.0, 1.0, 2.0], [3.0, 4.0, 5.0]), 42);
        let mut buf = vec![0u8; Item::<3>::ENCODED_SIZE];
        item.encode(&mut buf);
        assert_eq!(Item::<3>::decode(&buf), item);
    }
}
