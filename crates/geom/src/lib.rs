//! Geometry kernel for the PR-tree reproduction.
//!
//! Everything in the paper operates on axis-parallel `d`-dimensional
//! (hyper-)rectangles. This crate provides:
//!
//! * [`Point<D>`] and [`Rect<D>`] with the predicates and measures every
//!   R-tree variant needs (intersection, containment, area, margin,
//!   enlargement, minimal bounding boxes),
//! * the *corner mapping* `R ↦ R*` of a `D`-dimensional rectangle to a
//!   `2D`-dimensional point (`(xmin, ymin, xmax, ymax)` in the plane), which
//!   is the heart of both the pseudo-PR-tree and the four-dimensional
//!   Hilbert R-tree — see [`mapped`],
//! * [`Item<D>`]: a rectangle tagged with a `u32` payload id, matching the
//!   paper's 36-byte input records (4 × 8-byte coordinates + 4-byte
//!   pointer),
//! * [`batch`]: structure-of-arrays predicate kernels
//!   (intersection/containment masks, batched point-to-rectangle
//!   distances) over per-dimension coordinate columns — the vectorized
//!   heart of the decode-free query engine, proven bit-identical to the
//!   scalar [`Rect`] predicates by property tests.
//!
//! Coordinates are `f64`. The paper assumes all defining coordinates are
//! distinct; real datasets are not that polite, so all orderings exposed
//! here break ties by item id (see [`mapped::cmp_items_on_axis`]), making
//! every ordering total and deterministic.

pub mod batch;
pub mod item;
pub mod mapped;
pub mod point;
pub mod rect;

pub use item::Item;
pub use mapped::{Axis, MappedOrd};
pub use point::Point;
pub use rect::Rect;

/// A 2-dimensional rectangle, the shape used by all paper experiments.
pub type Rect2 = Rect<2>;
/// A 2-dimensional point.
pub type Point2 = Point<2>;
/// A 2-dimensional labeled rectangle.
pub type Item2 = Item<2>;
