//! The corner mapping `R ↦ R*` and its axis orderings.
//!
//! The pseudo-PR-tree treats a `D`-dimensional rectangle
//! `((lo₁..lo_D),(hi₁..hi_D))` as the `2D`-dimensional point
//! `(lo₁,…,lo_D,hi₁,…,hi_D)` — in the plane, `(xmin, ymin, xmax, ymax)`.
//! kd-style splits cycle round-robin through these `2D` axes, and each
//! internal node owns `2D` *priority leaves* holding the `B` most extreme
//! rectangles per axis: minimal `lo` coordinates on the first `D` axes,
//! maximal `hi` coordinates on the last `D`.
//!
//! All comparisons break ties by item id so that orderings are total even
//! when coordinates coincide (the paper assumes they never do).

use crate::item::Item;
use crate::rect::Rect;
use std::cmp::Ordering;

/// One of the `2D` axes of the corner mapping.
///
/// `Axis(k)` with `k < D` refers to `lo[k]` (a "min side"); `k ≥ D` refers
/// to `hi[k - D]` (a "max side"). For `D = 2` the axes are, in order:
/// `xmin, ymin, xmax, ymax` — the round-robin order of §2.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Axis(pub usize);

impl Axis {
    /// All `2D` axes in the paper's round-robin order.
    pub fn all<const D: usize>() -> impl Iterator<Item = Axis> {
        (0..2 * D).map(Axis)
    }

    /// The axis following `self` in round-robin order.
    #[inline]
    pub fn next<const D: usize>(self) -> Axis {
        Axis((self.0 + 1) % (2 * D))
    }

    /// True if this axis reads a `lo` coordinate.
    #[inline]
    pub fn is_min_side<const D: usize>(self) -> bool {
        self.0 < D
    }

    /// The underlying spatial dimension (`0..D`).
    #[inline]
    pub fn dim<const D: usize>(self) -> usize {
        if self.0 < D {
            self.0
        } else {
            self.0 - D
        }
    }

    /// The mapped coordinate of `rect` along this axis.
    #[inline]
    pub fn coord<const D: usize>(self, rect: &Rect<D>) -> f64 {
        if self.0 < D {
            rect.lo_at(self.0)
        } else {
            rect.hi_at(self.0 - D)
        }
    }

    /// Human-readable name for 2-D axes (used in traces and tests).
    pub fn name2(self) -> &'static str {
        match self.0 {
            0 => "xmin",
            1 => "ymin",
            2 => "xmax",
            3 => "ymax",
            _ => "axis?",
        }
    }
}

/// Compares two items by mapped coordinate along `axis`, ties by id.
///
/// This is the ordering used for kd-splits and for the four sorted lists of
/// the external construction algorithm.
#[inline]
pub fn cmp_items_on_axis<const D: usize>(axis: Axis, a: &Item<D>, b: &Item<D>) -> Ordering {
    axis.coord(&a.rect)
        .total_cmp(&axis.coord(&b.rect))
        .then_with(|| a.id.cmp(&b.id))
}

/// Compares two items by *extremeness* along `axis`: `Less` means "more
/// extreme", i.e. belongs in the priority leaf first.
///
/// On min-side axes the most extreme rectangle has the smallest `lo`
/// ("leftmost left edge"); on max-side axes it has the largest `hi`
/// ("rightmost right edge").
///
/// Invariant relied on by the external construction algorithms: this
/// order is *exactly* [`cmp_items_on_axis`] on min-side axes and exactly
/// its reverse (tie-breaks included) on max-side axes, so a stream sorted
/// by extremeness doubles as a (possibly reversed) coordinate-sorted
/// list.
#[inline]
pub fn cmp_extreme_on_axis<const D: usize>(axis: Axis, a: &Item<D>, b: &Item<D>) -> Ordering {
    let ord = cmp_items_on_axis(axis, a, b);
    if axis.is_min_side::<D>() {
        ord
    } else {
        ord.reverse()
    }
}

/// A total order over items along a fixed mapped axis; implements the
/// comparator plumbing needed by sorts and binary heaps.
#[derive(Clone, Copy, Debug)]
pub struct MappedOrd {
    /// The axis this ordering reads.
    pub axis: Axis,
}

impl MappedOrd {
    /// Ordering by raw mapped coordinate (ascending), ties by id.
    pub fn new(axis: Axis) -> Self {
        MappedOrd { axis }
    }

    /// Compare two items under this ordering.
    #[inline]
    pub fn cmp<const D: usize>(&self, a: &Item<D>, b: &Item<D>) -> Ordering {
        cmp_items_on_axis(self.axis, a, b)
    }

    /// Sorts a slice under this ordering.
    pub fn sort<const D: usize>(&self, items: &mut [Item<D>]) {
        let axis = self.axis;
        items.sort_unstable_by(|a, b| cmp_items_on_axis(axis, a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn it(xmin: f64, ymin: f64, xmax: f64, ymax: f64, id: u32) -> Item<2> {
        Item::new(Rect::xyxy(xmin, ymin, xmax, ymax), id)
    }

    #[test]
    fn axis_roundrobin_order_matches_paper() {
        // §2.1: divide on xmin, then ymin, then xmax, then ymax, repeat.
        let names: Vec<_> = Axis::all::<2>().map(|a| a.name2()).collect();
        assert_eq!(names, ["xmin", "ymin", "xmax", "ymax"]);
        assert_eq!(Axis(3).next::<2>(), Axis(0));
        assert_eq!(Axis(0).next::<2>(), Axis(1));
    }

    #[test]
    fn axis_coord_reads_correct_corner() {
        let r = Rect::xyxy(1.0, 2.0, 3.0, 4.0);
        assert_eq!(Axis(0).coord(&r), 1.0);
        assert_eq!(Axis(1).coord(&r), 2.0);
        assert_eq!(Axis(2).coord(&r), 3.0);
        assert_eq!(Axis(3).coord(&r), 4.0);
        assert!(Axis(0).is_min_side::<2>());
        assert!(!Axis(2).is_min_side::<2>());
        assert_eq!(Axis(3).dim::<2>(), 1);
    }

    #[test]
    fn extreme_ordering_min_and_max_sides() {
        let a = it(0.0, 0.0, 1.0, 1.0, 1);
        let b = it(2.0, 0.0, 5.0, 1.0, 2);
        // xmin: a more extreme (smaller lo).
        assert_eq!(cmp_extreme_on_axis(Axis(0), &a, &b), Ordering::Less);
        // xmax: b more extreme (bigger hi).
        assert_eq!(cmp_extreme_on_axis(Axis(2), &a, &b), Ordering::Greater);
    }

    #[test]
    fn ties_break_by_id() {
        let a = it(1.0, 0.0, 2.0, 1.0, 7);
        let b = it(1.0, 9.0, 3.0, 10.0, 9);
        assert_eq!(cmp_items_on_axis(Axis(0), &a, &b), Ordering::Less);
        assert_eq!(cmp_items_on_axis(Axis(0), &b, &a), Ordering::Greater);
        assert_eq!(cmp_items_on_axis(Axis(0), &a, &a), Ordering::Equal);
        assert_eq!(cmp_extreme_on_axis(Axis(0), &a, &b), Ordering::Less);
    }

    #[test]
    fn extreme_order_is_exact_reverse_on_max_sides() {
        // Same ymax: the extremeness order on a max-side axis must be the
        // exact reverse of the ascending order, tie-breaks included.
        let a = it(0.0, 0.0, 1.0, 5.0, 1);
        let b = it(9.0, 0.0, 10.0, 5.0, 2);
        assert_eq!(
            cmp_extreme_on_axis(Axis(3), &a, &b),
            cmp_items_on_axis(Axis(3), &a, &b).reverse()
        );
        // So among equal coordinates the *larger* id is "more extreme".
        assert_eq!(cmp_extreme_on_axis(Axis(3), &a, &b), Ordering::Greater);
    }

    #[test]
    fn mapped_ord_sort() {
        let mut items = vec![
            it(3.0, 0.0, 4.0, 1.0, 0),
            it(1.0, 5.0, 2.0, 6.0, 1),
            it(2.0, -1.0, 9.0, 0.0, 2),
        ];
        MappedOrd::new(Axis(0)).sort(&mut items);
        let ids: Vec<_> = items.iter().map(|i| i.id).collect();
        assert_eq!(ids, [1, 2, 0]);
        MappedOrd::new(Axis(2)).sort(&mut items);
        let ids: Vec<_> = items.iter().map(|i| i.id).collect();
        assert_eq!(ids, [1, 0, 2]);
    }
}
