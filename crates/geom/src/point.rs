//! `D`-dimensional points.

use std::fmt;

/// A point in `D`-dimensional space.
///
/// Points are thin wrappers around `[f64; D]`; they exist mostly as inputs
/// to [`crate::Rect`] constructors and for dataset generation.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Point<D> {
    /// The origin (all coordinates zero).
    pub const ORIGIN: Self = Point([0.0; D]);

    /// Creates a point from its coordinate array.
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Coordinate along dimension `dim` (panics if `dim >= D`).
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        self.0[dim]
    }

    /// All coordinates.
    #[inline]
    pub fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// True if every coordinate is finite (not NaN / ±inf).
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Euclidean distance to `other`; used only by tests and examples, the
    /// index structures themselves are purely order/overlap based.
    pub fn distance(&self, other: &Self) -> f64 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Componentwise minimum.
    pub fn min(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a.min(*b);
        }
        Point(out)
    }

    /// Componentwise maximum.
    pub fn max(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a.max(*b);
        }
        Point(out)
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.0)
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_access() {
        let p = Point::new([1.0, 2.0, 3.0]);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(2), 3.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn origin_is_zero() {
        let o = Point::<2>::ORIGIN;
        assert_eq!(o.coords(), &[0.0, 0.0]);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new([1.0, 5.0]);
        let b = Point::new([3.0, 2.0]);
        assert_eq!(a.min(&b).coords(), &[1.0, 2.0]);
        assert_eq!(a.max(&b).coords(), &[3.0, 5.0]);
    }

    #[test]
    fn finiteness() {
        assert!(Point::new([1.0, 2.0]).is_finite());
        assert!(!Point::new([f64::NAN, 0.0]).is_finite());
        assert!(!Point::new([f64::INFINITY, 0.0]).is_finite());
    }

    #[test]
    fn from_array() {
        let p: Point<1> = [7.5].into();
        assert_eq!(p.coord(0), 7.5);
    }
}
