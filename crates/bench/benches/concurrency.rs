//! Multi-threaded window-query throughput on the sharded-cache runtime.
//!
//! Measures `RTree::par_windows` over a fixed batch of windows at 1, 2,
//! 4, and 8 threads, verifying en route that every thread count returns
//! exactly the serial results and leaf-I/O counts (the refactor's
//! contract: concurrency changes wall-clock time, nothing else).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pr_data::queries::square_queries;
use pr_data::uniform_points;
use pr_em::{BlockDevice, MemDevice};
use pr_geom::Rect;
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::{RTree, TreeParams};
use std::sync::Arc;
use std::time::Instant;

fn build_tree(n: u32) -> RTree<2> {
    let params = TreeParams::paper_2d();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = PrTreeLoader::default()
        .load(dev, params, uniform_points(n, 7))
        .unwrap();
    tree.warm_cache().unwrap();
    tree
}

fn bench_par_windows(c: &mut Criterion) {
    let n = 200_000u32;
    let tree = build_tree(n);
    let domain = Rect::xyxy(0.0, 0.0, 1.0, 1.0);
    let windows = square_queries(&domain, 0.001, 256, 3);

    // Correctness gate: every thread count must reproduce the serial
    // results and leaf-I/O counts exactly before we bother timing it.
    let serial = tree.par_windows(&windows, 1).unwrap();
    for threads in [2usize, 4, 8] {
        let par = tree.par_windows(&windows, threads).unwrap();
        assert_eq!(par.len(), serial.len());
        for (i, ((pr, ps), (sr, ss))) in par.iter().zip(&serial).enumerate() {
            assert_eq!(pr.len(), sr.len(), "query {i}: result count @ {threads}t");
            assert_eq!(
                ps.leaves_visited, ss.leaves_visited,
                "query {i}: leaf I/Os @ {threads}t"
            );
        }
    }

    let mut group = c.benchmark_group("par_windows_200k");
    group.sample_size(15);
    group.throughput(Throughput::Elements(windows.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}threads")),
            &threads,
            |b, &t| {
                b.iter(|| tree.par_windows(&windows, t).unwrap());
            },
        );
    }
    group.finish();

    // Headline number: measured speedup at 4 threads over serial.
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        tree.par_windows(&windows, 1).unwrap();
    }
    let serial_t = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..reps {
        tree.par_windows(&windows, 4).unwrap();
    }
    let par_t = t0.elapsed();
    let speedup = serial_t.as_secs_f64() / par_t.as_secs_f64();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "par_windows speedup @4 threads on {cores} core(s): {speedup:.2}x \
         ({:.1} ms serial vs {:.1} ms parallel per batch)",
        serial_t.as_secs_f64() * 1e3 / reps as f64,
        par_t.as_secs_f64() * 1e3 / reps as f64,
    );
    // Wall-clock assertions are opt-in (PRTREE_REQUIRE_SCALING=1): shared
    // CI runners are too noisy to gate merges on a timing race, and
    // single-core boxes cannot scale at all. The correctness gate above
    // always runs; set the variable on a quiet ≥4-core host to also
    // enforce the speedup acceptance criterion.
    if cores >= 4 && std::env::var_os("PRTREE_REQUIRE_SCALING").is_some() {
        assert!(
            speedup > 1.0,
            "4-thread batch must beat serial on {cores} cores (got {speedup:.2}x)"
        );
    }
}

criterion_group!(benches, bench_par_windows);
criterion_main!(benches);
