//! `merge_storm`: write amplification of incremental merge commits
//! under repeated forced seals over a large resident index.
//!
//! A big compacted component (the "resident index") sits in a high
//! slot while a storm of small batches is sealed and merged over and
//! over. Every storm merge must commit the resident run **by
//! reference** — same stable id, same byte offset, zero pages
//! rewritten — while only the small merged component is appended.
//! Reported to `BENCH_merge_storm.json`:
//!
//! * **storm write-amp** — store bytes written by merges per byte of
//!   user data ingested during the storm (the O(levels) amortized
//!   geometric cost; a full-rewrite store would be O(index size));
//! * **ingest p50/p95/p99** — per-batch acked latency *during* the
//!   storm (merge commits must not stall the WAL path);
//! * **small-merge page fraction** — pages written by one forced
//!   small-level merge over the total live pages (< 10%: the proof
//!   that a small merge does not rewrite the index);
//! * **resident reuse** — the resident run's (id, offset, pages)
//!   triple before vs after the storm, byte-identical by offset.
//!
//! Set `PRTREE_REQUIRE_WRITE_AMP=1` (the CI gate) to assert the
//! steady-state write-amp bound, the <10% small-merge fraction, and
//! in-place resident reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use pr_bench::LatencyHistogram;
use pr_geom::{Item, Rect};
use pr_live::{LiveIndex, LiveOptions, LiveStats, StoreRunStat};
use pr_tree::TreeParams;
use std::path::PathBuf;
use std::time::Instant;

/// Items in the resident (compacted, high-slot) component.
const BASE_N: u32 = 100_000;
/// Storm rounds: each seals + merges one small batch.
const ROUNDS: u32 = 24;
/// Items per storm round.
const ROUND_N: u32 = 512;
/// Acked batch size within a round.
const BATCH: usize = 128;
const BUFFER_CAP: usize = 2048;
/// Steady-state write-amp acceptance bound (×): geometric merging
/// rewrites each ingested byte once per level it cascades through —
/// a handful — plus page-packing overhead. A full-rewrite commit
/// would sit at BASE_N/ROUND_N ≈ 195×.
const WRITE_AMP_BOUND: f64 = 8.0;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pr-bench-storm-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts() -> LiveOptions {
    LiveOptions {
        buffer_cap: BUFFER_CAP,
        background_merge: false, // merges run inline: deterministic deltas
        backpressure_factor: 4,
        ..LiveOptions::default()
    }
}

fn item(i: u32) -> Item<2> {
    let x = ((i as f64 * 0.754_877_666) % 1.0).abs();
    let y = ((i as f64 * 0.569_840_290) % 1.0).abs();
    Item::new(Rect::xyxy(x, y, x, y), i)
}

/// Bytes merges wrote to the store so far (pages × block size).
fn written_bytes(s: &LiveStats, block: u64) -> u64 {
    s.store_pages_written * block
}

fn total_live_pages(s: &LiveStats) -> u64 {
    s.store_runs.iter().map(|r| r.num_pages).sum()
}

fn find_run(s: &LiveStats, id: u64) -> Option<StoreRunStat> {
    s.store_runs.iter().find(|r| r.id == id).copied()
}

fn bench_merge_storm(_c: &mut Criterion) {
    let dir = tmpdir("storm");
    let params = TreeParams::paper_2d();
    let ix = LiveIndex::<2>::create(&dir, params, opts()).unwrap();
    let block = params.page_size as u64; // pages are one store block

    // Resident index: bulk ingest, then compact into one big component.
    let base: Vec<Item<2>> = (0..BASE_N).map(item).collect();
    for chunk in base.chunks(BUFFER_CAP) {
        ix.insert_batch(chunk).unwrap();
    }
    ix.compact().unwrap();
    let start = ix.stats().unwrap();
    assert_eq!(start.store_runs.len(), 1, "setup: one resident run");
    let resident = start.store_runs[0];

    // The storm: forced seal + inline merge every ROUND_N items.
    let mut hist = LatencyHistogram::new();
    let t0 = Instant::now();
    for r in 0..ROUNDS {
        let lo = 1_000_000 + r * ROUND_N;
        let round: Vec<Item<2>> = (lo..lo + ROUND_N).map(item).collect();
        for chunk in round.chunks(BATCH) {
            let b0 = Instant::now();
            ix.insert_batch(chunk).unwrap();
            hist.record(b0.elapsed().as_nanos() as u64);
        }
        ix.flush().unwrap();
    }
    let storm_secs = t0.elapsed().as_secs_f64();
    let after = ix.stats().unwrap();
    assert_eq!(after.live, (BASE_N + ROUNDS * ROUND_N) as u64);

    let ingested = (ROUNDS * ROUND_N) as u64 * Item::<2>::ENCODED_SIZE as u64;
    let storm_written = written_bytes(&after, block) - written_bytes(&start, block);
    let write_amp = storm_written as f64 / ingested as f64;
    let reused_pages = after.store_pages_reused - start.store_pages_reused;

    // Resident reuse: the big run never moved and was never rewritten.
    let resident_after = find_run(&after, resident.id);
    let resident_reused = resident_after == Some(resident);

    // One forced small-level merge over the now-large index. Settle
    // slot 0 first so the probe cannot land on a cascade boundary: as
    // long as slot 0 cannot absorb a small batch, keep storming.
    let slot0 = |s: &LiveStats| {
        s.components
            .iter()
            .find(|(slot, _)| *slot == 0)
            .map_or(0, |(_, n)| *n)
    };
    let mut extra = 0u32;
    while slot0(&ix.stats().unwrap()) + 64 > BUFFER_CAP as u64 {
        let lo = 2_000_000 + extra * ROUND_N;
        let round: Vec<Item<2>> = (lo..lo + ROUND_N).map(item).collect();
        ix.insert_batch(&round).unwrap();
        ix.flush().unwrap();
        extra += 1;
        assert!(extra < 8, "slot 0 never settled");
    }
    let before_probe = ix.stats().unwrap();
    let probe: Vec<Item<2>> = (3_000_000..3_000_064).map(item).collect();
    ix.insert_batch(&probe).unwrap();
    ix.flush().unwrap();
    let after_probe = ix.stats().unwrap();
    let probe_pages = after_probe.store_pages_written - before_probe.store_pages_written;
    let probe_fraction = probe_pages as f64 / total_live_pages(&after_probe) as f64;

    let us = |q: f64| hist.quantile(q) as f64 / 1e3;
    let mut obj = pr_obs::json::JsonObj::new();
    obj.u64("schema_version", pr_obs::SCHEMA_VERSION)
        .str("experiment", "merge_storm")
        .u64("base_n", BASE_N as u64)
        .u64("rounds", ROUNDS as u64)
        .u64("round_n", ROUND_N as u64)
        .u64("buffer_cap", BUFFER_CAP as u64)
        .f64p("storm_write_amp", write_amp, 2)
        .f64p("write_amp_bound", WRITE_AMP_BOUND, 1)
        .u64("storm_pages_written", storm_written / block)
        .u64("storm_pages_reused", reused_pages)
        .f64p("index_write_amp", after.write_amp_x100 as f64 / 100.0, 2)
        .f64p(
            "storm_items_per_s",
            (ROUNDS * ROUND_N) as f64 / storm_secs.max(1e-9),
            0,
        )
        .f64p("ingest_batch_p50_us", us(0.50), 1)
        .f64p("ingest_batch_p95_us", us(0.95), 1)
        .f64p("ingest_batch_p99_us", us(0.99), 1)
        .u64("small_merge_pages", probe_pages)
        .u64("total_live_pages", total_live_pages(&after_probe))
        .f64p("small_merge_page_fraction", probe_fraction, 4)
        .u64("resident_run_id", resident.id)
        .u64("resident_data_offset", resident.data_offset)
        .u64("resident_num_pages", resident.num_pages)
        .bool("resident_reused_in_place", resident_reused)
        .u64("store_garbage_bytes", after_probe.store_garbage_bytes)
        .str(
            "gate",
            "PRTREE_REQUIRE_WRITE_AMP=1: write-amp bound + <10% small-merge \
             fraction + byte-identical resident reuse",
        );
    let row = obj.finish();
    println!("{row}");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_merge_storm.json");
    if let Err(e) = std::fs::write(&out, &row) {
        eprintln!("warning: could not write {}: {e}", out.display());
    } else {
        println!("wrote {}", out.display());
    }

    drop(ix);
    std::fs::remove_dir_all(&dir).ok();

    if std::env::var("PRTREE_REQUIRE_WRITE_AMP").as_deref() == Ok("1") {
        assert!(
            write_amp <= WRITE_AMP_BOUND,
            "storm write-amp {write_amp:.2}x exceeds the {WRITE_AMP_BOUND}x bound"
        );
        assert!(
            probe_fraction < 0.10,
            "a small-level merge wrote {probe_pages} of {} live pages \
             ({:.1}%) — incremental commits are rewriting the index",
            total_live_pages(&after_probe),
            probe_fraction * 100.0
        );
        assert!(
            resident_reused,
            "resident run {:?} vs {resident_after:?}: the surviving \
             component was rewritten or moved",
            resident
        );
        assert!(
            reused_pages >= ROUNDS as u64 * resident.num_pages,
            "every storm commit must reuse the resident run in place \
             ({reused_pages} reused pages over {ROUNDS} rounds of {} pages)",
            resident.num_pages
        );
    }
}

criterion_group!(benches, bench_merge_storm);
criterion_main!(benches);
