//! Cold-start latency: reopening a committed `pr-store` snapshot versus
//! rebuilding the index from raw rectangles, measured to the first
//! answered window query.
//!
//! The persisted path reads the superblock + internal nodes + the leaves
//! one query touches; the rebuild path re-sorts and rewrites every page.
//! A correctness gate asserts both paths answer the query identically
//! before anything is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use pr_data::uniform_points;
use pr_em::{BlockDevice, MemDevice};
use pr_geom::Rect;
use pr_store::Store;
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::{RTree, TreeParams};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const N: u32 = 100_000;

fn query() -> Rect<2> {
    Rect::xyxy(0.4, 0.4, 0.45, 0.45)
}

fn rebuild_then_query(items: &[pr_geom::Item<2>]) -> usize {
    let params = TreeParams::paper_2d();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = PrTreeLoader::default()
        .load(dev, params, items.to_vec())
        .unwrap();
    tree.warm_cache().unwrap();
    tree.window(&query()).unwrap().len()
}

fn open_then_query(path: &Path) -> usize {
    let tree: RTree<2> = Store::open_tree::<2>(path).unwrap();
    tree.warm_cache().unwrap();
    tree.window(&query()).unwrap().len()
}

fn bench_cold_open(c: &mut Criterion) {
    let items = uniform_points(N, 0xC0);
    let params = TreeParams::paper_2d();
    let path = std::env::temp_dir().join(format!("pr-bench-cold-{}.prt", std::process::id()));
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = PrTreeLoader::default()
        .load(dev, params, items.clone())
        .unwrap();
    let mut store = Store::create::<2>(&path, params).unwrap();
    store.save(&tree).unwrap();
    drop((store, tree));

    // Correctness gate: the two cold paths must agree before timing.
    let want = rebuild_then_query(&items);
    let got = open_then_query(&path);
    assert_eq!(want, got, "persisted and rebuilt answers differ");

    let mut group = c.benchmark_group("cold_start_100k");
    group.sample_size(10);
    group.bench_function("open_then_first_query", |b| {
        b.iter(|| open_then_query(&path));
    });
    group.bench_function("rebuild_then_first_query", |b| {
        b.iter(|| rebuild_then_query(&items));
    });
    group.finish();

    // Headline: one-shot wall-clock ratio.
    let t0 = Instant::now();
    let _ = rebuild_then_query(&items);
    let rebuild = t0.elapsed();
    let t0 = Instant::now();
    let _ = open_then_query(&path);
    let open = t0.elapsed();
    println!(
        "[cold_open] n={N}: open {:.2} ms vs rebuild {:.2} ms ({:.0}x faster to first answer)",
        open.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() / open.as_secs_f64().max(1e-9)
    );

    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_cold_open);
criterion_main!(benches);
