//! Substrate benchmarks: the external sort, streams, the LRU, and the
//! Hilbert curve — the building blocks whose constants set every
//! loader's wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pr_em::lru::LruCache;
use pr_em::{external_sort, MemDevice, SortConfig, Stream, StreamReader, StreamWriter};
use pr_hilbert::hilbert_index;

fn bench_external_sort(c: &mut Criterion) {
    let n: u64 = 200_000;
    let mut group = c.benchmark_group("external_sort_u64");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    for (label, mem) in [("tight_memory", 16 << 10), ("ample_memory", 16 << 20)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mem, |b, &mem| {
            b.iter(|| {
                let dev = MemDevice::new(4096);
                let input =
                    Stream::from_iter(&dev, (0..n).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)))
                        .unwrap();
                external_sort::<u64>(&dev, &input, SortConfig::with_memory(mem)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_stream_roundtrip(c: &mut Criterion) {
    let n: u64 = 500_000;
    let mut group = c.benchmark_group("stream_roundtrip_u64");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    group.bench_function("write_then_read", |b| {
        b.iter(|| {
            let dev = MemDevice::new(4096);
            let mut w = StreamWriter::<u64>::new(&dev);
            for i in 0..n {
                w.push(&i).unwrap();
            }
            let s = w.finish().unwrap();
            let mut sum = 0u64;
            let mut r = StreamReader::<u64>::new(&dev, &s);
            while let Some(v) = r.next_record().unwrap() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
    group.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_cache");
    group.sample_size(20);
    group.bench_function("mixed_ops_zipf", |b| {
        b.iter(|| {
            let mut cache: LruCache<u64, u64> = LruCache::new(1024);
            let mut x = 0x12345u64;
            let mut hits = 0u64;
            for _ in 0..100_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let key = x % 4096;
                if cache.get(&key).is_some() {
                    hits += 1;
                } else {
                    cache.insert(key, key);
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let mut group = c.benchmark_group("hilbert_index");
    group.sample_size(20);
    group.throughput(Throughput::Elements(10_000));
    for (label, dims) in [("2d_order32", 2usize), ("4d_order32", 4)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &dims, |b, &dims| {
            b.iter(|| {
                let mut acc = 0u128;
                let mut x = 0xCAFEBABEu32;
                let mut coords = vec![0u32; dims];
                for _ in 0..10_000 {
                    for c in coords.iter_mut() {
                        x ^= x << 13;
                        x ^= x >> 17;
                        x ^= x << 5;
                        *c = x;
                    }
                    acc ^= hilbert_index(&coords, 32);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_external_sort,
    bench_stream_roundtrip,
    bench_lru,
    bench_hilbert
);
criterion_main!(benches);
