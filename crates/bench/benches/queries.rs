//! Query benchmarks: window queries on each tree variant, plus the
//! pseudo-PR-tree and the LPR-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_data::queries::square_queries;
use pr_data::uniform_points;
use pr_em::{BlockDevice, MemDevice};
use pr_geom::Rect;
use pr_tree::bulk::LoaderKind;
use pr_tree::dynamic::LprTree;
use pr_tree::pseudo::PseudoPrTree;
use pr_tree::TreeParams;
use std::sync::Arc;

fn bench_window_queries(c: &mut Criterion) {
    let n = 50_000u32;
    let items = uniform_points(n, 7);
    let params = TreeParams::paper_2d();
    let queries = square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, 50, 3);

    let mut group = c.benchmark_group("window_query_1pct");
    group.sample_size(20);
    for kind in LoaderKind::all() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = kind.loader::<2>().load(dev, params, items.clone()).unwrap();
        tree.warm_cache().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &tree, |b, t| {
            b.iter(|| {
                let mut total = 0u64;
                for q in &queries {
                    total += t.window_count(q).unwrap().0;
                }
                total
            });
        });
    }
    group.finish();
}

fn bench_pseudo_and_lpr(c: &mut Criterion) {
    let n = 50_000u32;
    let items = uniform_points(n, 8);
    let params = TreeParams::paper_2d();
    let queries = square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, 50, 4);

    let mut group = c.benchmark_group("window_query_structures");
    group.sample_size(20);

    let pseudo = PseudoPrTree::build(items.clone(), params.leaf_cap);
    group.bench_function("pseudo_pr_tree", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += pseudo.window(q).len();
            }
            total
        });
    });

    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mut lpr = LprTree::<2>::new(dev, params, 4096);
    for &it in &items {
        lpr.insert(it).unwrap();
    }
    group.bench_function("lpr_tree", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += lpr.window(q).unwrap().0.len();
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_window_queries, bench_pseudo_and_lpr);
criterion_main!(benches);
