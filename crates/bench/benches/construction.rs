//! Construction benchmarks: every bulk loader, in-memory and external.
//!
//! Wall-clock complements the experiments binary's I/O counts (the
//! paper's Figure 9/10 time rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pr_data::uniform_points;
use pr_em::{BlockDevice, MemDevice, Stream};
use pr_tree::bulk::external::{load_hilbert_external, ExternalConfig};
use pr_tree::bulk::pr_external::PrExternalLoader;
use pr_tree::bulk::tgs_external::TgsExternalLoader;
use pr_tree::bulk::LoaderKind;
use pr_tree::{Entry, TreeParams};
use std::sync::Arc;

fn bench_in_memory(c: &mut Criterion) {
    let n = 20_000u32;
    let items = uniform_points(n, 42);
    let params = TreeParams::paper_2d();
    let mut group = c.benchmark_group("bulk_load_in_memory");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for kind in LoaderKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
                k.loader::<2>().load(dev, params, items.clone()).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_external(c: &mut Criterion) {
    let n = 20_000u32;
    let items = uniform_points(n, 43);
    let params = TreeParams::paper_2d();
    let config = ExternalConfig::with_memory((n as usize / 9) * 36);
    let mut group = c.benchmark_group("bulk_load_external");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for kind in LoaderKind::paper_four() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
                let input = Stream::from_iter(
                    dev.as_ref(),
                    items.iter().map(|&i| Entry::<2>::from_item(i)),
                )
                .unwrap();
                match k {
                    LoaderKind::Pr => PrExternalLoader::new(config)
                        .load::<2>(Arc::clone(&dev), params, &input)
                        .unwrap(),
                    LoaderKind::Tgs => TgsExternalLoader::new(config)
                        .load::<2>(Arc::clone(&dev), params, &input)
                        .unwrap(),
                    LoaderKind::Hilbert => {
                        load_hilbert_external::<2>(Arc::clone(&dev), params, &input, config, false)
                            .unwrap()
                    }
                    LoaderKind::Hilbert4 => {
                        load_hilbert_external::<2>(Arc::clone(&dev), params, &input, config, true)
                            .unwrap()
                    }
                    LoaderKind::Str => unreachable!(),
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_in_memory, bench_external);
criterion_main!(benches);
