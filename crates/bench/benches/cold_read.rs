//! `cold_read`: store-backed repeated-query throughput across the three
//! read paths of `pr-store` — the acceptance benchmark of the zero-copy
//! read pipeline.
//!
//! Same tree, same store file, same queries; only the device read path
//! differs:
//!
//! * **recheck** ([`ReadPath::Recheck`]) — positioned `read_at` into a
//!   buffer plus a full CRC32 recompute on *every* leaf visit of every
//!   query: the pre-rework behavior, the baseline;
//! * **zero-copy** ([`ReadPath::ZeroCopy`]) — mmap'd snapshot served as
//!   borrowed slices, each page CRC-verified exactly once (shared
//!   verify-once bitmap), then free;
//! * **cached** — zero-copy plus the bounded shared
//!   [`pr_tree::LeafCache`]: repeat visits don't touch the device at
//!   all, they scan an already-transcoded SoA node.
//!
//! Before timing, a correctness gate runs **all five loaders** through
//! all three paths: results (order included) and traversal statistics —
//! leaves, internal visits, node visits, result counts — must be
//! bit-identical to the never-persisted in-memory tree, and the
//! device-read counts must show exactly what each path promises. Then
//! the timed passes write `BENCH_cold_read.json` with ns/query per path
//! and the headline speedups; the in-memory hot-path time rides along
//! so the "approaches hot_query" claim is checkable from the row.
//! Set `PRTREE_REQUIRE_COLD_SPEEDUP=1` to assert the ≥3× cached-vs-
//! recheck window speedup (opt-in, like the other rate gates: shared
//! runners throttle).

use criterion::{criterion_group, criterion_main, Criterion};
use pr_data::queries::square_queries;
use pr_data::uniform_points;
use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Point, Rect};
use pr_store::{ReadPath, Store};
use pr_tree::bulk::LoaderKind;
use pr_tree::{LeafCache, QueryScratch, RTree, TreeParams};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const N: u32 = 100_000;
const N_QUERIES: usize = 64;
const GATE_QUERIES: usize = 16;
const KNN_K: usize = 10;
/// Big enough to hold every leaf of the 100k tree (~3.6 MB of pages).
const LEAF_CACHE_BYTES: usize = 64 << 20;

fn store_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pr-bench-coldread-{}-{name}.prt",
        std::process::id()
    ))
}

fn build_mem(kind: LoaderKind, items: &[Item<2>]) -> RTree<2> {
    let params = TreeParams::paper_2d();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = kind
        .loader::<2>()
        .load(dev, params, items.to_vec())
        .expect("bulk load");
    tree.warm_cache().expect("warm");
    tree
}

/// Reopens `store`'s tree on the given path, optionally with a fresh
/// leaf cache attached, internal nodes warmed.
fn reopen(store: &Store, path: ReadPath, cache_bytes: usize) -> RTree<2> {
    let mut tree = store.tree_with::<2>(path).expect("reopen");
    if cache_bytes > 0 {
        let cache = Arc::new(LeafCache::new(cache_bytes));
        let epoch = cache.register_epoch();
        tree.attach_leaf_cache(cache, epoch);
    }
    tree.warm_cache().expect("warm");
    tree
}

fn knn_points() -> Vec<Point<2>> {
    (0..N_QUERIES)
        .map(|i| {
            let f = (i as f64 + 0.5) / N_QUERIES as f64;
            Point::new([f, (f * 7.0) % 1.0])
        })
        .collect()
}

/// All five loaders × three read paths: identical results and traversal
/// stats vs the in-memory tree, with the promised device-read behavior.
fn correctness_gate(items: &[Item<2>], queries: &[Rect<2>]) {
    for kind in LoaderKind::all() {
        let mem = build_mem(kind, items);
        let path = store_path(&format!("gate-{}", kind.name()));
        let mut store = Store::create::<2>(&path, *mem.params()).expect("create");
        store.save(&mem).expect("save");

        let recheck = reopen(&store, ReadPath::Recheck, 0);
        let zero = reopen(&store, ReadPath::ZeroCopy, 0);
        let cached = reopen(&store, ReadPath::ZeroCopy, LEAF_CACHE_BYTES);
        for q in &queries[..GATE_QUERIES] {
            let (want, want_stats) = mem.window_with_stats(q).expect("mem window");
            for (name, tree) in [("recheck", &recheck), ("zero", &zero), ("cached", &cached)] {
                // Two passes: cold, then repeat (the cached path must
                // serve the repeat without device reads).
                for pass in 0..2 {
                    let (got, stats) = tree.window_with_stats(q).expect("store window");
                    assert_eq!(got, want, "{}/{name}: results differ", kind.name());
                    assert_eq!(
                        (
                            stats.nodes_visited,
                            stats.leaves_visited,
                            stats.internal_visited,
                            stats.results
                        ),
                        (
                            want_stats.nodes_visited,
                            want_stats.leaves_visited,
                            want_stats.internal_visited,
                            want_stats.results
                        ),
                        "{}/{name}: traversal stats differ",
                        kind.name()
                    );
                    match (name, pass) {
                        // Uncached paths read every leaf every time.
                        ("recheck", _) | ("zero", _) => assert_eq!(
                            stats.device_reads,
                            want_stats.leaves_visited,
                            "{}/{name} pass {pass}: device reads",
                            kind.name()
                        ),
                        // Cached first touch: every leaf visit is either
                        // a cache hit (overlapping earlier gate queries
                        // already admitted it) or one device read that
                        // admits it — the accounting must be exact.
                        ("cached", 0) => {
                            assert_eq!(stats.device_reads, stats.leaf_cache_misses);
                            assert_eq!(
                                stats.leaf_cache_hits + stats.leaf_cache_misses,
                                stats.leaves_visited
                            );
                        }
                        // Cached repeat: all leaf visits are cache hits.
                        ("cached", _) => {
                            assert_eq!(
                                stats.device_reads,
                                0,
                                "{}/cached repeat still reads the device",
                                kind.name()
                            );
                            assert_eq!(stats.leaf_cache_hits, stats.leaves_visited);
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        // k-NN: identical neighbor lists and distances on every path.
        for p in knn_points().iter().take(8) {
            let (want, _) = mem.nearest_neighbors_with_stats(p, KNN_K).expect("mem knn");
            for (name, tree) in [("recheck", &recheck), ("zero", &zero), ("cached", &cached)] {
                let (got, _) = tree.nearest_neighbors_with_stats(p, KNN_K).expect("knn");
                assert_eq!(got, want, "{}/{name}: knn differs", kind.name());
            }
        }
        std::fs::remove_file(&path).ok();
    }
    println!(
        "cold_read gate: results + traversal stats identical across {:?} x \
         {{recheck, zero-copy, leaf-cached}}",
        LoaderKind::all().map(|k| k.name())
    );
}

/// Best-of-`reps` wall time of one full pass over the workload.
fn best_of(reps: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut sink = f(); // warm-up pass (populates caches, faults pages)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    criterion::black_box(sink);
    best
}

fn window_pass(tree: &RTree<2>, queries: &[Rect<2>], scratch: &mut QueryScratch<2>) -> u64 {
    let mut hits = Vec::new();
    let mut total = 0u64;
    for q in queries {
        tree.window_into(q, scratch, &mut hits).unwrap();
        total += hits.len() as u64;
    }
    total
}

fn knn_pass(tree: &RTree<2>, points: &[Point<2>], scratch: &mut QueryScratch<2>) -> u64 {
    let mut nn = Vec::new();
    let mut total = 0u64;
    for p in points {
        tree.nearest_neighbors_into(p, KNN_K, scratch, &mut nn)
            .unwrap();
        total += nn.len() as u64;
    }
    total
}

fn bench_cold_read(c: &mut Criterion) {
    let items = uniform_points(N, 7);
    let queries = square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, N_QUERIES, 11);
    correctness_gate(&items, &queries);

    let mem = build_mem(LoaderKind::Pr, &items);
    let path = store_path("timed");
    let mut store = Store::create::<2>(&path, *mem.params()).expect("create");
    store.save(&mem).expect("save");
    let recheck = reopen(&store, ReadPath::Recheck, 0);
    let zero = reopen(&store, ReadPath::ZeroCopy, 0);
    let cached = reopen(&store, ReadPath::ZeroCopy, LEAF_CACHE_BYTES);
    let points = knn_points();

    // Criterion groups (human-readable report).
    let mut group = c.benchmark_group("cold_window_1pct_uniform100k");
    group.sample_size(10);
    for (name, tree) in [
        ("recheck_every_read", &recheck),
        ("zero_copy_verify_once", &zero),
        ("zero_copy_leaf_cache", &cached),
    ] {
        let mut scratch = QueryScratch::new();
        group.bench_function(name, |b| {
            b.iter(|| window_pass(tree, &queries, &mut scratch))
        });
    }
    group.finish();

    // Machine-readable row (best-of-5 full passes per configuration).
    let mut scratch = QueryScratch::new();
    let win_recheck = best_of(5, || window_pass(&recheck, &queries, &mut scratch));
    let win_zero = best_of(5, || window_pass(&zero, &queries, &mut scratch));
    let win_cached = best_of(5, || window_pass(&cached, &queries, &mut scratch));
    let win_mem = best_of(5, || window_pass(&mem, &queries, &mut scratch));
    let knn_recheck = best_of(5, || knn_pass(&recheck, &points, &mut scratch));
    let knn_zero = best_of(5, || knn_pass(&zero, &points, &mut scratch));
    let knn_cached = best_of(5, || knn_pass(&cached, &points, &mut scratch));
    let knn_mem = best_of(5, || knn_pass(&mem, &points, &mut scratch));
    std::fs::remove_file(&path).ok();

    let per_q = |secs: f64| secs / N_QUERIES as f64 * 1e9;
    let mut obj = pr_obs::json::JsonObj::new();
    obj.u64("schema_version", pr_obs::SCHEMA_VERSION)
        .str("experiment", "cold_read")
        .str("dataset", "uniform")
        .u64("n", N as u64)
        .str("loader", "PR")
        .u64("queries", N_QUERIES as u64)
        .f64p("query_area_pct", 1.0, 1)
        .u64("knn_k", KNN_K as u64)
        .u64("leaf_cache_bytes", LEAF_CACHE_BYTES as u64)
        .f64p("window_recheck_ns_per_query", per_q(win_recheck), 0)
        .f64p("window_zero_copy_ns_per_query", per_q(win_zero), 0)
        .f64p("window_leaf_cache_ns_per_query", per_q(win_cached), 0)
        .f64p("window_in_memory_ns_per_query", per_q(win_mem), 0)
        .f64p("window_zero_copy_speedup", win_recheck / win_zero, 2)
        .f64p("window_leaf_cache_speedup", win_recheck / win_cached, 2)
        .f64p("window_leaf_cache_vs_in_memory", win_cached / win_mem, 2)
        .f64p("knn_recheck_ns_per_query", per_q(knn_recheck), 0)
        .f64p("knn_zero_copy_ns_per_query", per_q(knn_zero), 0)
        .f64p("knn_leaf_cache_ns_per_query", per_q(knn_cached), 0)
        .f64p("knn_in_memory_ns_per_query", per_q(knn_mem), 0)
        .f64p("knn_leaf_cache_speedup", knn_recheck / knn_cached, 2)
        .bool("results_identical", true)
        .bool("leaf_visit_stats_identical", true)
        .strings("loaders_checked", &["PR", "H", "H4", "TGS", "STR"]);
    let row = obj.finish();
    println!("{row}");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cold_read.json");
    if let Err(e) = std::fs::write(&out, &row) {
        eprintln!("warning: could not write {}: {e}", out.display());
    } else {
        println!("wrote {}", out.display());
    }

    let speedup = win_recheck / win_cached;
    if std::env::var("PRTREE_REQUIRE_COLD_SPEEDUP").as_deref() == Ok("1") {
        assert!(
            speedup >= 3.0,
            "leaf-cached window speedup {speedup:.2}x < 3x acceptance threshold"
        );
    } else if speedup < 3.0 {
        eprintln!("note: leaf-cached speedup {speedup:.2}x below the 3x target on this host");
    }
}

criterion_group!(benches, bench_cold_read);
criterion_main!(benches);
