//! `hot_query`: warm-cache query throughput — decode-free SoA engine vs
//! the retained scalar AoS engine (the PR-2 read path) on the same tree.
//!
//! This is the acceptance benchmark of the decode-free engine: same
//! uniform-100k dataset, same PR-tree, same queries; only the read-path
//! representation differs. Before timing anything it runs a correctness
//! gate over **all five loaders**: results (order included) and
//! [`pr_tree::QueryStats`] — leaves, internal visits, device reads —
//! must be identical between engines, else the process aborts.
//!
//! Besides the criterion groups, the run writes one machine-readable
//! row to `BENCH_hot_query.json` at the repo root (old vs new ns/query
//! for windows and k-NN, speedups, gate verdict, metrics overhead). Set
//! `PRTREE_REQUIRE_SPEEDUP=1` to turn the ≥2× window-throughput claim
//! into a hard assertion (off by default: CI machines throttle), and
//! `PRTREE_REQUIRE_OBS_OVERHEAD=1` to assert that the registry's
//! recording switch costs ≤ 5% on the hot window path (measured on the
//! same instrumented loop with recording on vs off) and that the span
//! tracer costs ≤ 5% armed-but-inert vs fully disabled. Both overhead
//! pairs are measured **interleaved** — on/off alternating within the
//! same best-of loop, order flipped every rep — so thermal and
//! frequency drift lands on both sides instead of biasing whichever
//! configuration happened to run last.

use criterion::{criterion_group, criterion_main, Criterion};
use pr_data::queries::square_queries;
use pr_data::uniform_points;
use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Point, Rect};
use pr_tree::bulk::LoaderKind;
use pr_tree::reference::ReferenceEngine;
use pr_tree::{QueryScratch, RTree, TreeParams};
use std::sync::Arc;
use std::time::Instant;

const N: u32 = 100_000;
const N_QUERIES: usize = 64;
const KNN_K: usize = 10;

fn build(kind: LoaderKind, items: &[pr_geom::Item<2>]) -> RTree<2> {
    let params = TreeParams::paper_2d();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = kind
        .loader::<2>()
        .load(dev, params, items.to_vec())
        .expect("bulk load");
    tree.warm_cache().expect("warm");
    tree
}

fn knn_points() -> Vec<Point<2>> {
    (0..N_QUERIES)
        .map(|i| {
            let f = (i as f64 + 0.5) / N_QUERIES as f64;
            Point::new([f, (f * 7.0) % 1.0])
        })
        .collect()
}

/// Identical results + identical leaf-I/O across every loader variant,
/// or no numbers at all.
fn correctness_gate(items: &[pr_geom::Item<2>], queries: &[Rect<2>]) {
    for kind in LoaderKind::all() {
        let tree = build(kind, items);
        let oracle = ReferenceEngine::new(&tree).expect("oracle");
        for q in queries {
            let (got, got_stats) = tree.window_with_stats(q).expect("window");
            let (want, want_stats) = oracle.window_with_stats(q).expect("oracle");
            assert_eq!(got, want, "{}: window results differ", kind.name());
            assert_eq!(
                got_stats,
                want_stats,
                "{}: window stats differ",
                kind.name()
            );
        }
        for p in knn_points() {
            let (got, gs) = tree.nearest_neighbors_with_stats(&p, KNN_K).expect("knn");
            let (want, ws) = oracle
                .nearest_neighbors_with_stats(&p, KNN_K)
                .expect("oracle");
            assert_eq!(got, want, "{}: knn results differ", kind.name());
            assert_eq!(gs, ws, "{}: knn stats differ", kind.name());
        }
    }
    println!(
        "hot_query gate: results + leaf I/O identical across {:?}",
        LoaderKind::all().map(|k| k.name())
    );
}

/// Best-of-`reps` wall time of one full pass over the workload, in
/// seconds (best-of filters scheduler noise on shared runners).
fn best_of(reps: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut sink = f(); // warm-up pass
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    criterion::black_box(sink);
    best
}

/// Best-of-`reps` for two configurations (A, B) of the same workload,
/// measured interleaved: each rep times one A pass and one B pass, with
/// the order flipped every rep. Slow drift — thermal throttling,
/// frequency scaling, another tenant waking up — then hits both sides
/// symmetrically, where back-to-back `best_of` calls charge all of it
/// to whichever configuration ran second (observed as a spurious
/// negative "overhead" in past runs).
fn interleaved_best_of(
    reps: usize,
    mut set_a: impl FnMut(),
    mut set_b: impl FnMut(),
    mut f: impl FnMut() -> u64,
) -> (f64, f64) {
    let mut sink = 0u64;
    set_a();
    sink = sink.wrapping_add(f()); // warm-up, side A
    set_b();
    sink = sink.wrapping_add(f()); // warm-up, side B
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..reps {
        let order = if rep % 2 == 0 {
            [true, false]
        } else {
            [false, true]
        };
        for a_side in order {
            if a_side {
                set_a();
            } else {
                set_b();
            }
            let t0 = Instant::now();
            sink = sink.wrapping_add(f());
            let dt = t0.elapsed().as_secs_f64();
            if a_side {
                best_a = best_a.min(dt);
            } else {
                best_b = best_b.min(dt);
            }
        }
    }
    criterion::black_box(sink);
    (best_a, best_b)
}

#[allow(clippy::too_many_arguments)]
fn json_row(
    count_old: f64,
    count_new: f64,
    collect_old: f64,
    collect_new: f64,
    knn_old: f64,
    knn_new: f64,
    obs_on: f64,
    obs_off: f64,
    trace_armed: f64,
    trace_off: f64,
    fault_armed: f64,
) -> String {
    let per_q = |secs: f64| secs / N_QUERIES as f64 * 1e9;
    let mut row = pr_obs::json::JsonObj::new();
    row.u64("schema_version", pr_obs::SCHEMA_VERSION)
        .str("experiment", "hot_query")
        .str("dataset", "uniform")
        .u64("n", N as u64)
        .str("loader", "PR")
        .str("cache", "InternalNodes (warm, frozen)")
        .u64("queries", N_QUERIES as u64)
        .f64p("query_area_pct", 1.0, 1)
        .u64("knn_k", KNN_K as u64)
        .f64p("window_old_ns_per_query", per_q(count_old), 0)
        .f64p("window_new_ns_per_query", per_q(count_new), 0)
        .f64p("window_speedup", count_old / count_new, 2)
        .f64p("window_collect_old_ns_per_query", per_q(collect_old), 0)
        .f64p("window_collect_new_ns_per_query", per_q(collect_new), 0)
        .f64p("window_collect_speedup", collect_old / collect_new, 2)
        .f64p("knn_old_ns_per_query", per_q(knn_old), 0)
        .f64p("knn_new_ns_per_query", per_q(knn_new), 0)
        .f64p("knn_speedup", knn_old / knn_new, 2)
        .f64p("obs_on_ns_per_query", per_q(obs_on), 0)
        .f64p("obs_off_ns_per_query", per_q(obs_off), 0)
        .f64p("obs_overhead_pct", (obs_on / obs_off - 1.0) * 100.0, 2)
        .f64p("trace_armed_ns_per_query", per_q(trace_armed), 0)
        .f64p("trace_off_ns_per_query", per_q(trace_off), 0)
        .f64p(
            "trace_overhead_pct",
            (trace_armed / trace_off - 1.0) * 100.0,
            2,
        )
        .str(
            "overhead_method",
            "interleaved best-of, order flipped per rep",
        )
        .f64p("fault_armed_ns_per_query", per_q(fault_armed), 0)
        .f64p(
            "fault_probe_overhead_pct",
            (fault_armed / obs_on - 1.0) * 100.0,
            2,
        )
        .bool("results_identical", true)
        .bool("leaf_io_identical", true)
        .strings("loaders_checked", &["PR", "H", "H4", "TGS", "STR"]);
    row.finish()
}

fn bench_hot_query(c: &mut Criterion) {
    let items = uniform_points(N, 7);
    let queries = square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, N_QUERIES, 11);
    correctness_gate(&items, &queries);

    let tree = build(LoaderKind::Pr, &items);
    let oracle = ReferenceEngine::new(&tree).expect("oracle");
    let points = knn_points();

    // Criterion groups (human-readable report).
    let mut group = c.benchmark_group("hot_window_1pct_uniform100k");
    group.sample_size(10);
    group.bench_function("old_aos_engine", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &queries {
                total += oracle.window_count(q).unwrap().0;
            }
            total
        });
    });
    let mut scratch = QueryScratch::new();
    group.bench_function("new_soa_engine", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &queries {
                total += tree.window_count_into(q, &mut scratch).unwrap().0;
            }
            total
        });
    });
    group.finish();

    let mut group = c.benchmark_group("hot_knn10_uniform100k");
    group.sample_size(10);
    group.bench_function("old_aos_engine", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for p in &points {
                total += oracle
                    .nearest_neighbors_with_stats(p, KNN_K)
                    .unwrap()
                    .0
                    .len() as u64;
            }
            total
        });
    });
    let mut scratch = QueryScratch::new();
    let mut nn = Vec::new();
    group.bench_function("new_soa_engine", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for p in &points {
                tree.nearest_neighbors_into(p, KNN_K, &mut scratch, &mut nn)
                    .unwrap();
                total += nn.len() as u64;
            }
            total
        });
    });
    group.finish();

    // Machine-readable row (best-of-5 passes per engine).
    let window_old = best_of(5, || {
        queries
            .iter()
            .map(|q| oracle.window_count(q).unwrap().0)
            .sum()
    });
    let mut scratch = QueryScratch::new();
    let window_new = best_of(5, || {
        queries
            .iter()
            .map(|q| tree.window_count_into(q, &mut scratch).unwrap().0)
            .sum()
    });
    // Materializing windows: the old engine allocates a fresh result
    // vector per query (its only API); the new engine reuses the
    // caller's buffer through `window_into` — allocation-free traversal
    // is part of the engine, so the comparison is end-to-end honest.
    let collect_old = best_of(5, || {
        queries
            .iter()
            .map(|q| oracle.window_with_stats(q).unwrap().0.len() as u64)
            .sum()
    });
    let mut hits = Vec::new();
    let collect_new = best_of(5, || {
        queries
            .iter()
            .map(|q| {
                tree.window_into(q, &mut scratch, &mut hits).unwrap();
                hits.len() as u64
            })
            .sum()
    });
    let knn_old = best_of(5, || {
        points
            .iter()
            .map(|p| {
                oracle
                    .nearest_neighbors_with_stats(p, KNN_K)
                    .unwrap()
                    .0
                    .len() as u64
            })
            .sum()
    });
    let mut nn = Vec::new();
    let knn_new = best_of(5, || {
        points
            .iter()
            .map(|p| {
                tree.nearest_neighbors_into(p, KNN_K, &mut scratch, &mut nn)
                    .unwrap();
                nn.len() as u64
            })
            .sum()
    });

    // Observability overhead: the same instrumented window pass with the
    // registry recording switch on vs off, interleaved. The switch gates
    // exactly the per-query registry flush (`pr_tree::obs`), so the
    // ratio isolates what the metrics cost a hot read path.
    let (obs_on, obs_off) = interleaved_best_of(
        15,
        || pr_obs::set_recording(true),
        || pr_obs::set_recording(false),
        || {
            queries
                .iter()
                .map(|q| tree.window_count_into(q, &mut scratch).unwrap().0)
                .sum()
        },
    );
    pr_obs::set_recording(true);
    let obs_overhead_pct = (obs_on / obs_off - 1.0) * 100.0;
    println!("hot_query obs overhead: {obs_overhead_pct:.2}% (on vs off, interleaved best-of-15)");

    // Span-tracer overhead: disabled (one relaxed load per traversal)
    // vs armed at a 1-in-2^64 rate — the sampler runs its fetch-add
    // tick on every operation but essentially never samples, so the
    // armed side prices the bookkeeping alone, not trace construction.
    let (trace_armed, trace_off) = interleaved_best_of(
        15,
        || pr_obs::trace::set_sampling(u64::MAX),
        || pr_obs::trace::set_sampling(0),
        || {
            queries
                .iter()
                .map(|q| tree.window_count_into(q, &mut scratch).unwrap().0)
                .sum()
        },
    );
    pr_obs::trace::set_sampling(0);
    pr_obs::recorder().clear(); // drop any warm-up sample the tick=0 edge admitted
    let trace_overhead_pct = (trace_armed / trace_off - 1.0) * 100.0;
    println!(
        "hot_query trace overhead: {trace_overhead_pct:.2}% \
         (armed-inert vs disabled, interleaved best-of-15)"
    );

    // Fault-probe overhead: disarmed, the injection hook is one relaxed
    // atomic load per device op (the `obs_on` pass above); armed with an
    // empty schedule it also counts ops. The robustness layer is only
    // free if neither state taxes the hot read path.
    let fault_armed = {
        let _hook = pr_em::fault::exclusive();
        let _g = pr_em::fault::install(pr_em::fault::FaultSchedule::never(true));
        best_of(5, || {
            queries
                .iter()
                .map(|q| tree.window_count_into(q, &mut scratch).unwrap().0)
                .sum()
        })
    };
    let fault_overhead_pct = (fault_armed / obs_on - 1.0) * 100.0;
    println!(
        "hot_query fault-probe overhead: {fault_overhead_pct:.2}% \
         (armed-inert vs disarmed, best-of-5)"
    );

    let row = json_row(
        window_old,
        window_new,
        collect_old,
        collect_new,
        knn_old,
        knn_new,
        obs_on,
        obs_off,
        trace_armed,
        trace_off,
        fault_armed,
    );
    println!("{row}");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hot_query.json");
    if let Err(e) = std::fs::write(&out, &row) {
        eprintln!("warning: could not write {}: {e}", out.display());
    } else {
        println!("wrote {}", out.display());
    }

    let speedup = window_old / window_new;
    if std::env::var("PRTREE_REQUIRE_SPEEDUP").as_deref() == Ok("1") {
        assert!(
            speedup >= 2.0,
            "warm-cache window speedup {speedup:.2}x < 2x acceptance threshold"
        );
    } else if speedup < 2.0 {
        eprintln!("note: window speedup {speedup:.2}x below the 2x target on this host");
    }
    if std::env::var("PRTREE_REQUIRE_OBS_OVERHEAD").as_deref() == Ok("1") {
        assert!(
            obs_overhead_pct <= 5.0,
            "metrics recording costs {obs_overhead_pct:.2}% on the hot window path \
             (> 5% acceptance threshold)"
        );
    } else if obs_overhead_pct > 5.0 {
        eprintln!("note: obs overhead {obs_overhead_pct:.2}% above the 5% target on this host");
    }
    if std::env::var("PRTREE_REQUIRE_OBS_OVERHEAD").as_deref() == Ok("1") {
        assert!(
            trace_overhead_pct <= 5.0,
            "armed-inert span tracer costs {trace_overhead_pct:.2}% on the hot window \
             path (> 5% acceptance threshold)"
        );
    } else if trace_overhead_pct > 5.0 {
        eprintln!("note: trace overhead {trace_overhead_pct:.2}% above the 5% target on this host");
    }
    if std::env::var("PRTREE_REQUIRE_OBS_OVERHEAD").as_deref() == Ok("1") {
        assert!(
            fault_overhead_pct <= 5.0,
            "armed-inert fault probe costs {fault_overhead_pct:.2}% on the hot window \
             path (> 5% acceptance threshold)"
        );
    } else if fault_overhead_pct > 5.0 {
        eprintln!(
            "note: fault-probe overhead {fault_overhead_pct:.2}% above the 5% target on this host"
        );
    }
}

criterion_group!(benches, bench_hot_query);
criterion_main!(benches);
