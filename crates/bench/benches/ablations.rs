//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! priority-leaf size, kd-split snapping, node-cache policy, and the
//! dynamic split policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_data::queries::square_queries;
use pr_data::uniform_points;
use pr_em::{BlockDevice, MemDevice};
use pr_geom::Rect;
use pr_tree::bulk::pr::PrTreeLoader;
use pr_tree::bulk::BulkLoader;
use pr_tree::dynamic::SplitPolicy;
use pr_tree::{CachePolicy, RTree, TreeParams};
use std::sync::Arc;

fn build_pr(loader: PrTreeLoader, n: u32) -> RTree<2> {
    let params = TreeParams::paper_2d();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    loader
        .load(dev, params, uniform_points(n, 5))
        .expect("build")
}

/// Priority-leaf size: the paper's B vs fractions of B vs Agarwal et
/// al.'s 1. Query time degrades sharply below B (see also `dbg`:
/// utilization collapses).
fn bench_priority_size(c: &mut Criterion) {
    let queries = square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, 30, 9);
    let mut group = c.benchmark_group("ablation_priority_size");
    group.sample_size(10);
    for (label, prio) in [("B", None), ("B/4", Some(28)), ("1", Some(1))] {
        let tree = build_pr(
            PrTreeLoader {
                priority_size: prio,
                snap_splits: true,
            },
            30_000,
        );
        tree.warm_cache().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &tree, |b, t| {
            b.iter(|| {
                let mut total = 0u64;
                for q in &queries {
                    total += t.window_count(q).unwrap().0;
                }
                total
            });
        });
    }
    group.finish();
}

/// kd-split snapping: the paper's ~100%-utilization trick vs the exact
/// structural definition.
fn bench_snap_splits(c: &mut Criterion) {
    let queries = square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, 30, 10);
    let mut group = c.benchmark_group("ablation_snap_splits");
    group.sample_size(10);
    for (label, snap) in [("snapped", true), ("exact_median", false)] {
        let tree = build_pr(
            PrTreeLoader {
                priority_size: None,
                snap_splits: snap,
            },
            30_000,
        );
        tree.warm_cache().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &tree, |b, t| {
            b.iter(|| {
                let mut total = 0u64;
                for q in &queries {
                    total += t.window_count(q).unwrap().0;
                }
                total
            });
        });
    }
    group.finish();
}

/// Cache policy: the paper's all-internal cache vs a bounded LRU vs none.
fn bench_cache_policy(c: &mut Criterion) {
    let queries = square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, 30, 11);
    let tree = build_pr(PrTreeLoader::default(), 30_000);
    let mut group = c.benchmark_group("ablation_cache_policy");
    group.sample_size(10);
    for (label, policy) in [
        ("all_internal", CachePolicy::InternalNodes),
        ("lru_64", CachePolicy::Lru(64)),
        ("none", CachePolicy::None),
    ] {
        tree.set_cache_policy(policy);
        tree.warm_cache().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &tree, |b, t| {
            b.iter(|| {
                let mut total = 0u64;
                for q in &queries {
                    total += t.window_count(q).unwrap().0;
                }
                total
            });
        });
    }
    group.finish();
}

/// Dynamic split policies: insert throughput for Guttman linear,
/// quadratic and R*.
fn bench_split_policy(c: &mut Criterion) {
    let items = uniform_points(3_000, 12);
    let params = TreeParams::with_cap::<2>(32);
    let mut group = c.benchmark_group("ablation_split_policy");
    group.sample_size(10);
    for policy in SplitPolicy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
                    let mut tree = RTree::<2>::new_empty(dev, params).unwrap();
                    for &it in &items {
                        tree.insert(it, p).unwrap();
                    }
                    tree.len()
                });
            },
        );
    }
    group.finish();
}

/// Parallel vs sequential PR-tree construction (the crossbeam extension).
fn bench_parallel_build(c: &mut Criterion) {
    use pr_tree::bulk::pr_parallel::ParallelPrLoader;
    let items = uniform_points(100_000, 13);
    let params = TreeParams::paper_2d();
    let mut group = c.benchmark_group("ablation_parallel_build");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
                    ParallelPrLoader {
                        inner: PrTreeLoader::default(),
                        threads,
                    }
                    .load(dev, params, items.clone())
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_priority_size,
    bench_snap_splits,
    bench_cache_policy,
    bench_split_policy,
    bench_parallel_build
);
criterion_main!(benches);
