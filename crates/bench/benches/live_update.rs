//! `live_update`: mixed read/write throughput of the durable live index
//! (`pr-live`) — WAL-acknowledged ingest, deletes, and snapshot queries
//! racing background merges.
//!
//! Three headline numbers, written to `BENCH_live_update.json`:
//!
//! * **ingest throughput** — batched, WAL-fsynced inserts per second
//!   (every batch durable before it is acknowledged), with a full
//!   per-batch latency distribution (p50/p95/p99, hand-rolled
//!   HDR-style fixed buckets — [`pr_bench::LatencyHistogram`]);
//! * **mixed read/write** — a writer ingesting while a reader runs
//!   window queries on epoch-pinned snapshots: both rates measured
//!   simultaneously, plus the reader's latency distribution *under*
//!   ingest (means hide the fsync/merge tail; percentiles don't);
//! * **reopen** — crash-recovery time back to the first answered query.
//!
//! PR 6 adds the group-commit dimension: a **raw WAL-append ceiling**
//! (all records buffered through the vectored append path, one fsync —
//! the bound group commit approaches as sharing improves) and a
//! **multi-writer grid** (1/2/4/8 writers × fsync/async durability)
//! reporting aggregate acked items/s, merged per-batch p50/p95/p99, and
//! the group fsync count against the batch count.
//!
//! Correctness gates run first: a serial mixed insert/delete workload
//! must match a brute-force oracle exactly, a 2-writer sharded ingest
//! must hold the per-shard snapshot prefix invariant, and the
//! concurrent phase re-verifies every sampled snapshot.
//! Set `PRTREE_REQUIRE_LIVE_RATE=1` to assert ≥ 10k acked inserts/s in
//! both durability modes at every writer count (off by default: shared
//! runners throttle).

use criterion::{criterion_group, criterion_main, Criterion};
use pr_bench::LatencyHistogram;
use pr_geom::{Item, Rect};
use pr_live::{Durability, LiveIndex, LiveOptions, Wal, WalOp, WalRecord};
use pr_tree::{QueryScratch, TreeParams};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

const INGEST_N: u32 = 50_000;
const BATCH: usize = 512;
const BUFFER_CAP: usize = 4096;
/// Items per multi-writer matrix run (writers × durability grid).
const MW_N: u32 = 48_000;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pr-bench-live-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts(background: bool) -> LiveOptions {
    LiveOptions {
        buffer_cap: BUFFER_CAP,
        background_merge: background,
        backpressure_factor: 4,
        ..LiveOptions::default()
    }
}

fn params() -> TreeParams {
    TreeParams::paper_2d()
}

fn item(i: u32) -> Item<2> {
    let x = ((i as f64 * 0.754_877_666) % 1.0).abs();
    let y = ((i as f64 * 0.569_840_290) % 1.0).abs();
    Item::new(Rect::xyxy(x, y, x, y), i)
}

fn query(i: usize) -> Rect<2> {
    let f = (i as f64 * 0.381_966) % 0.9;
    Rect::xyxy(f, f, f + 0.1, f + 0.1)
}

/// Serial mixed workload vs brute force — no timing until this passes.
fn correctness_gate() {
    let dir = tmpdir("gate");
    let ix = LiveIndex::<2>::create(&dir, params(), opts(false)).unwrap();
    let mut oracle: Vec<Item<2>> = Vec::new();
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    for k in 0..3000u32 {
        if k % 4 == 3 && !oracle.is_empty() {
            let victim = oracle[(k as usize * 7) % oracle.len()];
            assert!(ix.delete(&victim).unwrap());
            oracle.retain(|i| i != &victim);
        } else {
            ix.insert(item(k)).unwrap();
            oracle.push(item(k));
        }
        if k % 500 == 499 {
            let snap = ix.snapshot();
            for qi in 0..8 {
                let q = query(qi);
                snap.window_into(&q, &mut scratch, &mut out).unwrap();
                let mut got: Vec<u32> = out.iter().map(|i| i.id).collect();
                let mut want: Vec<u32> = oracle
                    .iter()
                    .filter(|i| i.rect.intersects(&q))
                    .map(|i| i.id)
                    .collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "gate: op {k} query {qi}");
            }
        }
    }
    drop(ix);
    // Durability leg of the gate: reopen recovers everything acked.
    let ix = LiveIndex::<2>::open(&dir, opts(false)).unwrap();
    assert_eq!(ix.len(), oracle.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
    println!("live_update gate: serial mixed workload + reopen match brute force");
}

/// Two writers racing into disjoint id shards while a reader pins
/// snapshots: within every shard each snapshot must hold an **exact
/// prefix** of that writer's insert order, at least as long as the acks
/// observed before the pin; after both writers join, the index must
/// equal the full set (serial oracle). This is the multi-writer
/// correctness gate — no timing until it passes.
fn multi_writer_gate() {
    const W: usize = 2;
    const PER: u32 = 6_000;
    let dir = tmpdir("mw-gate");
    let ix = LiveIndex::<2>::create(&dir, params(), opts(true)).unwrap();
    let stop = AtomicBool::new(false);
    let acked: Vec<AtomicU64> = (0..W).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|s| {
        let ix = &ix;
        let stop = &stop;
        let acked = &acked;
        let writers: Vec<_> = (0..W)
            .map(|w| {
                s.spawn(move || {
                    let base = w as u32 * PER;
                    let items: Vec<Item<2>> = (base..base + PER).map(item).collect();
                    for chunk in items.chunks(97) {
                        ix.insert_batch(chunk).unwrap();
                        acked[w].fetch_add(chunk.len() as u64, Ordering::Release);
                    }
                })
            })
            .collect();
        let reader = s.spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let before: Vec<u64> = acked.iter().map(|a| a.load(Ordering::Acquire)).collect();
                let snap = ix.snapshot();
                let mut ids: Vec<u32> = snap.items().unwrap().iter().map(|i| i.id).collect();
                ids.sort_unstable();
                for (w, &floor) in before.iter().enumerate() {
                    let lo = w as u32 * PER;
                    let shard: Vec<u32> = ids
                        .iter()
                        .copied()
                        .filter(|&i| i >= lo && i < lo + PER)
                        .collect();
                    assert!(
                        shard.len() as u64 >= floor,
                        "shard {w}: snapshot misses acked inserts ({} < {floor})",
                        shard.len()
                    );
                    for (j, id) in shard.iter().enumerate() {
                        assert_eq!(*id, lo + j as u32, "shard {w}: snapshot is not a prefix");
                    }
                }
            }
        });
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        reader.join().unwrap();
    });
    ix.wait_idle().unwrap();
    assert_eq!(ix.len(), W as u64 * PER as u64);
    let mut ids: Vec<u32> = ix
        .snapshot()
        .items()
        .unwrap()
        .iter()
        .map(|i| i.id)
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..W as u32 * PER).collect::<Vec<_>>());
    drop(ix);
    std::fs::remove_dir_all(&dir).ok();
    println!("live_update gate: 2-writer sharded ingest holds the per-shard prefix invariant");
}

/// The raw sequential WAL-append ceiling: every record buffered through
/// the same vectored-append path the commit queue uses, one fsync at
/// the very end. No index, no locks — the number group commit would
/// reach if every batch shared a single group.
fn wal_append_ceiling(n: u32) -> f64 {
    let dir = tmpdir("wal-ceiling");
    std::fs::create_dir_all(&dir).unwrap();
    let mut wal = Wal::create(&dir).unwrap();
    let records: Vec<WalRecord<2>> = (0..n)
        .map(|i| WalRecord {
            seq: i as u64 + 1,
            op: WalOp::Insert,
            item: item(i),
        })
        .collect();
    let t0 = Instant::now();
    for chunk in records.chunks(BATCH) {
        wal.append_buffered(chunk).unwrap();
    }
    wal.sync().unwrap();
    let secs = t0.elapsed().as_secs_f64();
    drop(wal);
    std::fs::remove_dir_all(&dir).ok();
    n as f64 / secs.max(1e-9)
}

struct MwRow {
    writers: usize,
    durability: &'static str,
    rate: f64,
    hist: LatencyHistogram,
    fsyncs: u64,
    batches: u64,
}

/// `writers` threads ingest disjoint id shards concurrently; returns the
/// aggregate acked rate, the merged per-batch latency distribution, and
/// the group-commit fsync count against the batch count.
fn multi_writer_ingest(writers: usize, durability: Durability, label: &'static str) -> MwRow {
    let dir = tmpdir(&format!("mw-{label}-{writers}"));
    let lo = LiveOptions {
        durability,
        ..opts(true)
    };
    let ix = LiveIndex::<2>::create(&dir, params(), lo).unwrap();
    let per = MW_N / writers as u32;
    let mut hist = LatencyHistogram::new();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers as u32)
            .map(|w| {
                let ix = &ix;
                s.spawn(move || {
                    let items: Vec<Item<2>> = (w * per..(w + 1) * per).map(item).collect();
                    let mut h = LatencyHistogram::new();
                    for chunk in items.chunks(BATCH) {
                        let b0 = Instant::now();
                        ix.insert_batch(chunk).unwrap();
                        h.record(b0.elapsed().as_nanos() as u64);
                    }
                    h
                })
            })
            .collect();
        for h in handles {
            hist.merge(&h.join().unwrap());
        }
    });
    let acked = t0.elapsed().as_secs_f64();
    let total = per as u64 * writers as u64;
    ix.wait_idle().unwrap();
    assert_eq!(ix.len(), total);
    let stats = ix.stats().unwrap();
    drop(ix);
    std::fs::remove_dir_all(&dir).ok();
    MwRow {
        writers,
        durability: label,
        rate: total as f64 / acked.max(1e-9),
        hist,
        fsyncs: stats.wal_fsyncs,
        batches: writers as u64 * (per as usize).div_ceil(BATCH) as u64,
    }
}

/// Batched, durable ingest of `n` items; returns acked items/s plus the
/// per-batch (one WAL fsync each) latency distribution in nanoseconds.
fn timed_ingest(dir: &Path, n: u32, background: bool) -> (f64, LatencyHistogram) {
    let ix = LiveIndex::<2>::create(dir, params(), opts(background)).unwrap();
    let items: Vec<Item<2>> = (0..n).map(item).collect();
    let mut hist = LatencyHistogram::new();
    let t0 = Instant::now();
    for chunk in items.chunks(BATCH) {
        let b0 = Instant::now();
        ix.insert_batch(chunk).unwrap();
        hist.record(b0.elapsed().as_nanos() as u64);
    }
    let acked = t0.elapsed().as_secs_f64();
    ix.wait_idle().unwrap();
    assert_eq!(ix.len(), n as u64);
    (n as f64 / acked.max(1e-9), hist)
}

struct MixedOutcome {
    inserts_per_s: f64,
    queries_per_s: f64,
    query_mean_us: f64,
    /// Per-insert-batch latency under concurrent reads (ns).
    insert_hist: LatencyHistogram,
    /// Per-query latency under concurrent ingest (ns).
    query_hist: LatencyHistogram,
}

/// Writer ingests while a reader queries snapshots; both rates measured
/// over the same wall-clock window, snapshots verified for the prefix
/// invariant.
fn mixed_read_write(dir: &Path) -> MixedOutcome {
    let ix = LiveIndex::<2>::create(dir, params(), opts(true)).unwrap();
    let stop = AtomicBool::new(false);
    let queries_done = AtomicU64::new(0);
    let query_nanos = AtomicU64::new(0);
    let mut write_secs = 0.0;
    let mut insert_hist = LatencyHistogram::new();
    let mut query_hist = LatencyHistogram::new();
    std::thread::scope(|s| {
        let ix = &ix;
        let stop = &stop;
        let queries_done = &queries_done;
        let query_nanos = &query_nanos;
        let writer = s.spawn(move || {
            let items: Vec<Item<2>> = (0..INGEST_N).map(item).collect();
            let mut hist = LatencyHistogram::new();
            let t0 = Instant::now();
            for chunk in items.chunks(BATCH) {
                let b0 = Instant::now();
                ix.insert_batch(chunk).unwrap();
                hist.record(b0.elapsed().as_nanos() as u64);
            }
            let secs = t0.elapsed().as_secs_f64();
            stop.store(true, Ordering::Release);
            (secs, hist)
        });
        let reader = s.spawn(move || {
            let mut scratch = QueryScratch::new();
            let mut out = Vec::new();
            let mut qi = 0usize;
            let mut hist = LatencyHistogram::new();
            while !stop.load(Ordering::Acquire) {
                let snap = ix.snapshot();
                let t0 = Instant::now();
                snap.window_into(&query(qi), &mut scratch, &mut out)
                    .unwrap();
                let nanos = t0.elapsed().as_nanos() as u64;
                hist.record(nanos);
                query_nanos.fetch_add(nanos, Ordering::Relaxed);
                queries_done.fetch_add(1, Ordering::Relaxed);
                // Prefix invariant: a snapshot of an insert-only run is
                // exactly the items 0..len.
                let k = snap.len();
                assert!(out.iter().all(|i| (i.id as u64) < k), "snapshot torn");
                qi += 1;
            }
            hist
        });
        let (secs, w_hist) = writer.join().unwrap();
        write_secs = secs;
        insert_hist.merge(&w_hist);
        query_hist.merge(&reader.join().unwrap());
    });
    ix.wait_idle().unwrap();
    assert_eq!(ix.len(), INGEST_N as u64);
    let q = queries_done.load(Ordering::Relaxed).max(1);
    MixedOutcome {
        inserts_per_s: INGEST_N as f64 / write_secs.max(1e-9),
        queries_per_s: q as f64 / write_secs.max(1e-9),
        query_mean_us: query_nanos.load(Ordering::Relaxed) as f64 / q as f64 / 1e3,
        insert_hist,
        query_hist,
    }
}

/// Crash-reopen (WAL replay + component open) to the first answer.
fn timed_reopen(dir: &Path) -> f64 {
    let t0 = Instant::now();
    let ix = LiveIndex::<2>::open(dir, opts(true)).unwrap();
    let snap = ix.snapshot();
    let hits = snap.window(&query(3)).unwrap();
    criterion::black_box(hits.len());
    t0.elapsed().as_secs_f64()
}

fn bench_live_update(c: &mut Criterion) {
    correctness_gate();
    multi_writer_gate();

    // Criterion group: steady-state durable ingest (fresh dir per pass).
    let mut group = c.benchmark_group("live_update_50k");
    group.sample_size(10);
    let mut pass = 0u32;
    group.bench_function("durable_ingest_batched", |b| {
        b.iter(|| {
            pass += 1;
            let dir = tmpdir(&format!("crit-{pass}"));
            let (rate, _) = timed_ingest(&dir, INGEST_N, true);
            std::fs::remove_dir_all(&dir).ok();
            rate as u64
        });
    });
    group.finish();

    // Headline numbers.
    let dir = tmpdir("ingest");
    let (ingest_rate, ingest_hist) = timed_ingest(&dir, INGEST_N, true);
    std::fs::remove_dir_all(&dir).ok();

    let dir = tmpdir("mixed");
    let mixed = mixed_read_write(&dir);
    let reopen_s = timed_reopen(&dir);
    std::fs::remove_dir_all(&dir).ok();

    // The single-fsync append ceiling, then the writer/durability grid.
    let ceiling = wal_append_ceiling(MW_N);
    let async_d = Durability::Async {
        max_inflight_bytes: 8 << 20,
    };
    let mw: Vec<MwRow> = [1usize, 2, 4, 8]
        .iter()
        .flat_map(|&w| {
            [
                multi_writer_ingest(w, Durability::Fsync, "fsync"),
                multi_writer_ingest(w, async_d, "async"),
            ]
        })
        .collect();

    // Percentiles in µs (histograms record ns).
    let us = |h: &LatencyHistogram, q: f64| h.quantile(q) as f64 / 1e3;
    let mut mw_arr = pr_obs::json::JsonArr::new();
    for r in &mw {
        let mut o = pr_obs::json::JsonObj::new();
        o.u64("writers", r.writers as u64)
            .str("durability", r.durability)
            .f64p("items_per_s", r.rate, 0)
            .f64p("batch_p50_us", us(&r.hist, 0.50), 1)
            .f64p("batch_p95_us", us(&r.hist, 0.95), 1)
            .f64p("batch_p99_us", us(&r.hist, 0.99), 1)
            .u64("wal_fsyncs", r.fsyncs)
            .u64("batches", r.batches);
        mw_arr.push_raw(o.finish());
    }
    let mut obj = pr_obs::json::JsonObj::new();
    obj.u64("schema_version", pr_obs::SCHEMA_VERSION)
        .str("experiment", "live_update")
        .u64("n", INGEST_N as u64)
        .u64("batch", BATCH as u64)
        .u64("buffer_cap", BUFFER_CAP as u64)
        .str("durability", "fsync per batch, ack after fsync")
        .f64p("ingest_items_per_s", ingest_rate, 0)
        .f64p("ingest_batch_p50_us", us(&ingest_hist, 0.50), 1)
        .f64p("ingest_batch_p95_us", us(&ingest_hist, 0.95), 1)
        .f64p("ingest_batch_p99_us", us(&ingest_hist, 0.99), 1)
        .f64p("ingest_batch_max_us", ingest_hist.max() as f64 / 1e3, 1)
        .f64p("mixed_inserts_per_s", mixed.inserts_per_s, 0)
        .f64p("mixed_queries_per_s", mixed.queries_per_s, 0)
        .f64p("mixed_insert_batch_p50_us", us(&mixed.insert_hist, 0.50), 1)
        .f64p("mixed_insert_batch_p95_us", us(&mixed.insert_hist, 0.95), 1)
        .f64p("mixed_insert_batch_p99_us", us(&mixed.insert_hist, 0.99), 1)
        .f64p("mixed_query_mean_us", mixed.query_mean_us, 1)
        .f64p("mixed_query_p50_us", us(&mixed.query_hist, 0.50), 1)
        .f64p("mixed_query_p95_us", us(&mixed.query_hist, 0.95), 1)
        .f64p("mixed_query_p99_us", us(&mixed.query_hist, 0.99), 1)
        .f64p("mixed_query_max_us", mixed.query_hist.max() as f64 / 1e3, 1)
        .str(
            "histogram",
            "hand-rolled HDR-style, 32 sub-buckets/octave (<=3.2% error)",
        )
        .f64p("reopen_to_first_answer_ms", reopen_s * 1e3, 1)
        .f64p("wal_append_ceiling_items_per_s", ceiling, 0)
        .u64("multi_writer_n", MW_N as u64)
        .raw("multi_writer", &mw_arr.finish())
        .str(
            "gate",
            "serial oracle + snapshot prefix invariant (1 and 2 writers) + reopen",
        );
    let row = obj.finish();
    println!("{row}");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_live_update.json");
    if let Err(e) = std::fs::write(&out, &row) {
        eprintln!("warning: could not write {}: {e}", out.display());
    } else {
        println!("wrote {}", out.display());
    }

    if std::env::var("PRTREE_REQUIRE_LIVE_RATE").as_deref() == Ok("1") {
        assert!(
            ingest_rate >= 10_000.0,
            "durable ingest {ingest_rate:.0} items/s < 10k/s acceptance threshold"
        );
        // Both durability modes must clear the floor at every writer
        // count, and batches must be coalescing at >= 2 writers.
        for r in &mw {
            assert!(
                r.rate >= 10_000.0,
                "{} ingest at {} writer(s): {:.0} items/s < 10k/s",
                r.durability,
                r.writers,
                r.rate
            );
            if r.writers >= 2 {
                assert!(
                    r.fsyncs < r.batches,
                    "{} at {} writers: {} fsyncs for {} batches — no group sharing",
                    r.durability,
                    r.writers,
                    r.fsyncs,
                    r.batches
                );
            }
        }
    }
}

criterion_group!(benches, bench_live_update);
criterion_main!(benches);
