//! Command-line experiment runner.
//!
//! ```text
//! experiments all --scale small
//! experiments fig12 table1 thm3 --scale medium --json results.json
//! ```
//!
//! Prints each table in the paper's row/series layout; `--json` also
//! writes machine-readable output.

use pr_bench::{experiments, Scale, Table};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut json_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("expected small|medium|full after --scale"));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected a path after --json")),
                );
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    if names.is_empty() {
        usage();
        return;
    }
    if names.iter().any(|n| n == "all") {
        names = experiments::all_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let mut all_tables: Vec<Table> = Vec::new();
    for name in &names {
        eprintln!("[experiments] running {name} at {scale:?} scale…");
        let start = std::time::Instant::now();
        match experiments::run(name, scale) {
            Some(tables) => {
                for t in &tables {
                    println!("{t}");
                }
                eprintln!(
                    "[experiments] {name} done in {:.1}s",
                    start.elapsed().as_secs_f64()
                );
                all_tables.extend(tables);
            }
            None => {
                eprintln!("[experiments] unknown experiment '{name}'");
                eprintln!("known: all, {}", experiments::all_names().join(", "));
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let json = pr_bench::table::tables_to_json(&all_tables);
        let mut f = std::fs::File::create(&path).expect("create json file");
        f.write_all(json.as_bytes()).expect("write json");
        eprintln!("[experiments] wrote {path}");
    }
}

fn usage() {
    eprintln!(
        "usage: experiments <name>... [--scale small|medium|full] [--json out.json]\n\
         names: all, {}",
        experiments::all_names().join(", ")
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
