//! Experiment scales.
//!
//! The paper runs on a 2004 workstation with N up to 16.7M rectangles
//! and 64MB of TPIE memory (so `N/M ≈ 9` records). Scales here shrink
//! `N` but keep the `N/M` ratio, so the external algorithms perform the
//! same *number of passes* as in the paper and construction-cost ratios
//! carry over.

/// How big the experiment inputs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-quick: every experiment in a few minutes.
    Small,
    /// ~4× Small; closer statistics, minutes-to-tens-of-minutes.
    Medium,
    /// The paper's sizes (10M+ rectangles). Hours; needs ~8GB RAM.
    Full,
}

impl Scale {
    /// Parses `small` / `medium` / `full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Eastern TIGER-like dataset size (paper: 16.7M; Small = paper/10).
    ///
    /// Sizes below ~1M make the relative-cost metric of Figs. 12–15
    /// meaningless: with only tens of output blocks per query, boundary
    /// leaves dominate and every variant looks "slow". One tenth of the
    /// paper's N keeps output sizes in the hundreds of blocks.
    pub fn n_eastern(&self) -> u32 {
        match self {
            Scale::Small => 1_670_000,
            Scale::Medium => 4_175_000,
            Scale::Full => 16_700_000,
        }
    }

    /// Western TIGER-like dataset size (paper: 12M).
    pub fn n_western(&self) -> u32 {
        match self {
            Scale::Small => 1_200_000,
            Scale::Medium => 3_000_000,
            Scale::Full => 12_000_000,
        }
    }

    /// Synthetic dataset size (paper: 10M for SIZE/ASPECT/SKEWED).
    pub fn n_synthetic(&self) -> u32 {
        match self {
            Scale::Small => 1_000_000,
            Scale::Medium => 2_500_000,
            Scale::Full => 10_000_000,
        }
    }

    /// CLUSTER dataset: (clusters, points per cluster); paper: (10000,
    /// 1000). Points-per-cluster stays at the paper's 1000 (≈ 8.8 leaves
    /// per cluster — the intra-cluster leaf structure drives Table 1);
    /// only the cluster count shrinks.
    pub fn cluster(&self) -> (u32, u32) {
        match self {
            Scale::Small => (200, 1_000),
            Scale::Medium => (1_000, 1_000),
            Scale::Full => (10_000, 1_000),
        }
    }

    /// Theorem-3 grid: `2^k` columns of `B = 113` rows.
    pub fn worst_case_k(&self) -> u32 {
        match self {
            Scale::Small => 10, // 1024 columns ≈ 116k points
            Scale::Medium => 12,
            Scale::Full => 15,
        }
    }

    /// External-memory budget for `n` 36-byte records, preserving the
    /// paper's `N/M ≈ 9`.
    pub fn memory_bytes(&self, n: u32) -> usize {
        let m_records = (n as usize / 9).max(4096);
        m_records * 36
    }

    /// Queries per batch (the paper uses 100).
    pub fn queries_per_batch(&self) -> usize {
        100
    }

    /// Input size for the `cold_open` persistence experiment (kept below
    /// the query-experiment sizes: the point is the *ratio* of open cost
    /// to rebuild cost, which is already stark at these N).
    pub fn n_cold_open(&self) -> u32 {
        match self {
            Scale::Small => 500_000,
            Scale::Medium => 2_000_000,
            Scale::Full => 10_000_000,
        }
    }

    /// Updates used by the `dyn` experiment.
    pub fn n_updates(&self) -> u32 {
        match self {
            Scale::Small => 20_000,
            Scale::Medium => 80_000,
            Scale::Full => 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("paper"), None);
    }

    #[test]
    fn full_scale_matches_paper_sizes() {
        assert_eq!(Scale::Full.n_eastern(), 16_700_000);
        assert_eq!(Scale::Full.n_western(), 12_000_000);
        assert_eq!(Scale::Full.cluster(), (10_000, 1_000));
    }

    #[test]
    fn memory_ratio_is_paperlike() {
        let n = Scale::Small.n_synthetic();
        let m = Scale::Small.memory_bytes(n);
        let records = m / 36;
        let ratio = n as f64 / records as f64;
        assert!(ratio > 8.0 && ratio < 10.0, "N/M = {ratio}");
    }
}
