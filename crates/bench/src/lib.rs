//! Experiment harness for the PR-tree reproduction.
//!
//! One function per table/figure of the paper (module [`experiments`]),
//! each returning a [`table::Table`] whose rows mirror the paper's
//! presentation. The `experiments` binary runs them from the command
//! line:
//!
//! ```text
//! cargo run -p pr-bench --release --bin experiments -- all --scale small
//! cargo run -p pr-bench --release --bin experiments -- fig12 table1 thm3
//! ```
//!
//! Scales (see [`scale::Scale`]) shrink the paper's 10–17M-rectangle
//! datasets to laptop sizes while keeping every *shape* the paper
//! reports: the metric is an I/O count, not wall time, so who wins and
//! by roughly what factor is preserved. EXPERIMENTS.md records measured
//! vs published numbers.

pub mod experiments;
pub mod hist;
pub mod measure;
pub mod scale;
pub mod table;

pub use hist::LatencyHistogram;
pub use scale::Scale;
pub use table::Table;
