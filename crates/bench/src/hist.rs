//! Latency histogram — re-exported from `pr-obs`.
//!
//! The HDR-style histogram started life here as a bench-local tool; the
//! observability crate promoted it to the process-wide registry's
//! histogram representation (`pr_obs::hist`), where the implementation
//! and its tests now live. This shim keeps
//! `pr_bench::hist::LatencyHistogram` working for the benches and any
//! external callers.

pub use pr_obs::LatencyHistogram;
