//! Hand-rolled HDR-style latency histogram (no crates.io).
//!
//! Fixed log₂-bucketed layout, the scheme HdrHistogram popularized: a
//! value is placed by the position of its highest set bit (the
//! "exponent") and [`SUB_BITS`] further bits of mantissa, giving a
//! constant relative error of at most `1/2^SUB_BITS` (≈ 3% here) across
//! the full `u64` range — microseconds and minutes share one array.
//! Recording is one `leading_zeros` + one increment; percentile lookup
//! walks the counts once. No allocation after construction, no
//! dependency, and merging two histograms is element-wise addition,
//! which is how the mixed read/write bench combines per-thread
//! recorders.
//!
//! Values are raw `u64`s; the benches record **nanoseconds** and report
//! microseconds at the end.

/// Mantissa bits per power of two (32 sub-buckets ⇒ ≤ 3.2% error).
const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Bucket count: 64 exponents × 32 sub-buckets.
const BUCKETS: usize = 64 * SUB_COUNT;

/// A fixed-size log-bucketed histogram of `u64` values.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// Bucket index of `value` (monotone in `value`).
    fn index(value: u64) -> usize {
        if value < SUB_COUNT as u64 {
            // Values below one full mantissa resolve exactly.
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = (value >> (exp - SUB_BITS)) as usize & (SUB_COUNT - 1);
        ((exp - SUB_BITS + 1) as usize) * SUB_COUNT + sub
    }

    /// Representative (upper-edge) value of bucket `i` — what
    /// percentile queries report. At most `1/2^SUB_BITS` above any
    /// value the bucket holds.
    fn value_at(i: usize) -> u64 {
        if i < SUB_COUNT {
            return i as u64;
        }
        let exp = (i / SUB_COUNT) as u32 + SUB_BITS - 1;
        let sub = (i % SUB_COUNT) as u64 | SUB_COUNT as u64;
        // Upper edge: next sub-bucket boundary minus one.
        ((sub + 1) << (exp - SUB_BITS)) - 1
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of recorded values (exact sum / count).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound within the
    /// bucket resolution (≈3%) of the true order statistic. `q = 0.5`
    /// is the median, `q = 0.99` the p99. Returns 0 on an empty
    /// histogram; `q ≥ 1` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the order statistic, 1-based, ceil(q·n) clamped to [1, n].
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_at(i).min(self.max);
            }
        }
        self.max
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.len(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert!((h.mean() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn index_is_monotone_and_value_at_bounds_bucket() {
        let mut prev = 0usize;
        for shift in 0..50u32 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off * (1 << shift) / 7;
                let i = LatencyHistogram::index(v);
                assert!(i >= prev, "index not monotone at {v}");
                prev = i;
                let upper = LatencyHistogram::value_at(i);
                assert!(upper >= v, "bucket upper edge {upper} < value {v}");
                // Relative error of the representative is bounded.
                assert!(
                    (upper - v) as f64 <= v as f64 / 16.0 + 1.0,
                    "error too large: {v} -> {upper}"
                );
            }
        }
    }

    #[test]
    fn quantiles_track_a_sorted_oracle_within_resolution() {
        // Deterministic pseudo-random values across 5 decades.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut vals = Vec::new();
        let mut h = LatencyHistogram::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 10_000_000;
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let want = vals[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            assert!(
                got >= want * 0.999 && got <= want * 1.04 + 32.0,
                "q={q}: got {got}, oracle {want}"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [5u64, 900, 12_345, 7, 1_000_000, 64] {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), all.len());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.min(), all.min());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
