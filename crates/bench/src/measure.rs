//! Measurement helpers: build trees, run query batches, collect I/O.

use pr_em::{BlockDevice, IoStats, MemDevice, Stream};
use pr_geom::{Item, Rect};
use pr_tree::bulk::external::{load_hilbert_external, ExternalConfig};
use pr_tree::bulk::pr_external::PrExternalLoader;
use pr_tree::bulk::tgs_external::TgsExternalLoader;
use pr_tree::bulk::LoaderKind;
use pr_tree::{Entry, RTree, TreeParams};
use std::sync::Arc;
use std::time::Instant;

/// Cost of one bulk-loading run.
#[derive(Debug, Clone, Copy)]
pub struct BuildCost {
    /// Block transfers through the substrate.
    pub io: IoStats,
    /// Wall-clock seconds on this host.
    pub seconds: f64,
}

/// Builds a tree with the *in-memory* loader (used by query experiments,
/// where construction cost is irrelevant).
pub fn build_in_memory(kind: LoaderKind, items: &[Item<2>], params: TreeParams) -> RTree<2> {
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    kind.loader::<2>()
        .load(dev, params, items.to_vec())
        .expect("bulk load")
}

/// Builds a tree with the *external* loader under `memory_bytes` of
/// budget, measuring substrate I/O (excluding writing the input stream)
/// and wall time. `STR` has no external form and is mapped to its
/// in-memory loader with I/O = page writes only.
pub fn build_external(
    kind: LoaderKind,
    items: &[Item<2>],
    params: TreeParams,
    memory_bytes: usize,
) -> (RTree<2>, BuildCost) {
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let input = Stream::from_iter(
        dev.as_ref(),
        items.iter().map(|&i| Entry::<2>::from_item(i)),
    )
    .expect("input stream");
    let config = ExternalConfig::with_memory(memory_bytes);
    let before = dev.io_stats();
    let start = Instant::now();
    let tree = match kind {
        LoaderKind::Pr => PrExternalLoader::new(config)
            .load::<2>(Arc::clone(&dev), params, &input)
            .expect("pr external"),
        LoaderKind::Hilbert => {
            load_hilbert_external::<2>(Arc::clone(&dev), params, &input, config, false)
                .expect("hilbert external")
        }
        LoaderKind::Hilbert4 => {
            load_hilbert_external::<2>(Arc::clone(&dev), params, &input, config, true)
                .expect("h4 external")
        }
        LoaderKind::Tgs => TgsExternalLoader::new(config)
            .load::<2>(Arc::clone(&dev), params, &input)
            .expect("tgs external"),
        LoaderKind::Str => kind
            .loader::<2>()
            .load(Arc::clone(&dev), params, items.to_vec())
            .expect("str"),
    };
    let seconds = start.elapsed().as_secs_f64();
    let io = dev.io_stats().since(before);
    (tree, BuildCost { io, seconds })
}

/// Aggregate cost of a query batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryAgg {
    /// Queries executed.
    pub queries: u64,
    /// Total leaf blocks read (the paper's I/O metric).
    pub total_leaves: u64,
    /// Total reported rectangles.
    pub total_results: u64,
    /// Mean of per-query `leaves / ⌈T/B⌉` over queries with `T > 0`.
    pub avg_relative_cost: f64,
    /// Mean leaves per query.
    pub avg_leaves: f64,
    /// Mean results per query.
    pub avg_results: f64,
}

/// Runs a query batch the way the paper does: all internal nodes cached
/// (`warm_cache`), cost = leaves fetched.
pub fn run_queries(tree: &RTree<2>, queries: &[Rect<2>]) -> QueryAgg {
    tree.warm_cache().expect("warm cache");
    let leaf_cap = tree.params().leaf_cap;
    let mut agg = QueryAgg {
        queries: queries.len() as u64,
        ..Default::default()
    };
    let mut rel_sum = 0.0;
    let mut rel_n = 0u64;
    for q in queries {
        let (_, stats) = tree.window_count(q).expect("query");
        agg.total_leaves += stats.leaves_visited;
        agg.total_results += stats.results;
        if let Some(rel) = stats.relative_cost(leaf_cap) {
            rel_sum += rel;
            rel_n += 1;
        }
    }
    if rel_n > 0 {
        agg.avg_relative_cost = rel_sum / rel_n as f64;
    }
    if agg.queries > 0 {
        agg.avg_leaves = agg.total_leaves as f64 / agg.queries as f64;
        agg.avg_results = agg.total_results as f64 / agg.queries as f64;
    }
    agg
}

/// Fraction of the tree's leaves a batch visits on average (Table 1's
/// "% of the R-tree visited").
pub fn fraction_of_leaves_visited(tree: &RTree<2>, agg: &QueryAgg) -> f64 {
    let leaves = tree.stats().expect("stats").num_leaves();
    if leaves == 0 || agg.queries == 0 {
        return 0.0;
    }
    (agg.total_leaves as f64 / agg.queries as f64) / leaves as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_data::uniform_points;

    #[test]
    fn in_memory_and_external_builds_agree_on_query_results() {
        let items = uniform_points(5_000, 1);
        let params = TreeParams::with_cap::<2>(16);
        let mem = build_in_memory(LoaderKind::Pr, &items, params);
        let (ext, cost) = build_external(LoaderKind::Pr, &items, params, 64 << 10);
        assert!(cost.io.total() > 0);
        assert!(cost.seconds >= 0.0);
        let q = Rect::xyxy(0.2, 0.2, 0.4, 0.4);
        let a = mem.window(&q).unwrap().len();
        let b = ext.window(&q).unwrap().len();
        assert_eq!(a, b);
    }

    #[test]
    fn query_agg_metrics_are_sane() {
        let items = uniform_points(20_000, 2);
        let params = TreeParams::with_cap::<2>(32);
        let tree = build_in_memory(LoaderKind::Hilbert, &items, params);
        let queries =
            pr_data::queries::square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.01, 20, 3);
        let agg = run_queries(&tree, &queries);
        assert_eq!(agg.queries, 20);
        assert!(agg.avg_results > 50.0, "1% of 20k ≈ 200");
        assert!(agg.avg_relative_cost >= 1.0, "cannot beat ⌈T/B⌉");
        assert!(agg.avg_relative_cost < 3.0, "packed tree near optimal");
        let frac = fraction_of_leaves_visited(&tree, &agg);
        assert!(frac > 0.0 && frac < 0.2);
    }

    #[test]
    fn all_loader_kinds_build_external() {
        let items = uniform_points(2_000, 5);
        let params = TreeParams::with_cap::<2>(16);
        for kind in LoaderKind::all() {
            let (tree, cost) = build_external(kind, &items, params, 32 << 10);
            assert_eq!(tree.len(), 2_000, "{}", kind.name());
            tree.validate().unwrap().assert_ok();
            assert!(cost.io.writes > 0);
        }
    }
}
