//! One function per table/figure of the paper. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for measured-vs-paper results.

use crate::measure::{
    build_external, build_in_memory, fraction_of_leaves_visited, run_queries, QueryAgg,
};
use crate::scale::Scale;
use crate::table::{blocks, f2, pct, Table};
use pr_data::queries::{cluster_strip_queries, skewed_queries, square_queries};
use pr_data::{
    aspect_dataset, cluster_dataset, size_dataset, skewed_dataset, uniform_points,
    worst_case::worst_case_line_query, worst_case_grid, TigerProfile,
};
use pr_em::{BlockDevice, MemDevice};
use pr_geom::{Item, Rect};
use pr_tree::bulk::LoaderKind;
use pr_tree::dynamic::{LprTree, SplitPolicy};
use pr_tree::{RTree, TreeParams};
use std::sync::Arc;

/// All experiment ids, in paper order.
pub fn all_names() -> &'static [&'static str] {
    &[
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15size",
        "fig15aspect",
        "fig15skew",
        "table1",
        "thm3",
        "util",
        "dyn",
        "ablation",
        "cold_open",
    ]
}

/// Runs one experiment by id.
pub fn run(name: &str, scale: Scale) -> Option<Vec<Table>> {
    let tables = match name {
        "fig9" => fig9(scale),
        "fig10" => vec![fig10(scale)],
        "fig11" => vec![fig11(scale)],
        "fig12" => vec![fig12_13(scale, false)],
        "fig13" => vec![fig12_13(scale, true)],
        "fig14" => vec![fig14(scale)],
        "fig15size" => vec![fig15_size(scale)],
        "fig15aspect" => vec![fig15_aspect(scale)],
        "fig15skew" => vec![fig15_skew(scale)],
        "table1" => vec![table1(scale)],
        "thm3" => vec![thm3(scale)],
        "util" => vec![util(scale)],
        "dyn" => dyn_experiment(scale),
        "ablation" => vec![ablation(scale)],
        "cold_open" => vec![cold_open(scale)],
        _ => return None,
    };
    Some(tables)
}

fn params() -> TreeParams {
    TreeParams::paper_2d()
}

fn unit_square() -> Rect<2> {
    Rect::xyxy(0.0, 0.0, 1.0, 1.0)
}

/// Figure 9: bulk-loading cost (block I/Os and wall seconds) on the
/// TIGER-like Eastern and Western datasets.
pub fn fig9(scale: Scale) -> Vec<Table> {
    let western = TigerProfile::western().generate(scale.n_western(), 5);
    let eastern = TigerProfile::eastern().generate(scale.n_eastern(), 5);

    let mut io = Table::new(
        "fig9-io",
        "bulk-loading I/O on TIGER-like data (blocks read+written)",
        &["tree", "Western", "Eastern"],
    );
    let mut time = Table::new(
        "fig9-time",
        "bulk-loading wall time on TIGER-like data (seconds)",
        &["tree", "Western", "Eastern"],
    );
    for kind in LoaderKind::paper_four() {
        let mut io_row = vec![kind.name().to_string()];
        let mut t_row = vec![kind.name().to_string()];
        for items in [&western, &eastern] {
            let mem = scale.memory_bytes(items.len() as u32);
            let (_, cost) = build_external(kind, items, params(), mem);
            io_row.push(blocks(cost.io.total()));
            t_row.push(f2(cost.seconds));
        }
        io.row(io_row);
        time.row(t_row);
    }
    io.note("paper (Fig 9): H/H4 1.2/1.7 mln, PR 3.1/4.4 mln, TGS 14.7/21.1 mln (West/East)");
    io.note("expected shape: H=H4 < PR (≈2.5x H) < TGS (≈4.5x PR)");
    time.note("paper: H/H4 451/583s, PR 1495/2138s, TGS 4421/6530s — only the ordering is comparable across hardware");
    vec![io, time]
}

/// Figure 10: bulk-loading I/Os over the five nested Eastern subsets.
pub fn fig10(scale: Scale) -> Table {
    let profile = TigerProfile::eastern();
    let n_full = scale.n_eastern();
    // Paper subset sizes: 2.1, 5.7, 9.2, 12.7, 16.7 mln.
    let fractions = [0.126, 0.341, 0.551, 0.760, 1.0];
    let mut t = Table::new(
        "fig10",
        "bulk-loading I/Os vs input size (nested Eastern subsets)",
        &["rectangles", "H", "PR", "TGS"],
    );
    for (r, frac) in fractions.iter().enumerate() {
        let n = (n_full as f64 * frac) as u32;
        let items = profile.generate(n, r as u32 + 1);
        let mem = scale.memory_bytes(n);
        let mut row = vec![format!("{n}")];
        for kind in [LoaderKind::Hilbert, LoaderKind::Pr, LoaderKind::Tgs] {
            let (_, cost) = build_external(kind, &items, params(), mem);
            row.push(blocks(cost.io.total()));
        }
        t.row(row);
    }
    t.note("paper (Fig 10, mln blocks): H 0.2→1.7, PR 0.6→4.4, TGS 1.8→21.1");
    t.note("expected shape: all three grow ~linearly; TGS slightly superlinear");
    t
}

/// Figure 11: TGS bulk-loading cost over the SIZE and ASPECT sweeps (the
/// only loader whose construction cost depends on the data distribution).
pub fn fig11(scale: Scale) -> Table {
    let n = scale.n_synthetic();
    let mem = scale.memory_bytes(n);
    let mut t = Table::new(
        "fig11",
        "TGS bulk-loading cost over SIZE(max_side) and ASPECT(a)",
        &["dataset", "seconds", "I/Os"],
    );
    for max_side in [0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let items = size_dataset(n, max_side, 0x51ED);
        let (_, cost) = build_external(LoaderKind::Tgs, &items, params(), mem);
        t.row(vec![
            format!("SIZE({max_side})"),
            f2(cost.seconds),
            blocks(cost.io.total()),
        ]);
    }
    for aspect in [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
        let items = aspect_dataset(n, aspect, 0xA59E);
        let (_, cost) = build_external(LoaderKind::Tgs, &items, params(), mem);
        t.row(vec![
            format!("ASPECT({aspect:.0})"),
            f2(cost.seconds),
            blocks(cost.io.total()),
        ]);
    }
    t.note("paper (Fig 11, seconds): SIZE 3726→14024 rising with max_side; ASPECT 4613→14034");
    t.note("for reference, PR on the same data is distribution-independent (§3.3)");
    t
}

/// Shared engine for Figures 12/13: query cost vs query area on TIGER-like
/// data. Performance = leaves read ÷ ⌈T/B⌉ (percent; 100% = optimal).
fn fig12_13(scale: Scale, eastern: bool) -> Table {
    let (id, title, items) = if eastern {
        (
            "fig13",
            "query cost vs query size, Eastern TIGER-like",
            TigerProfile::eastern().generate(scale.n_eastern(), 5),
        )
    } else {
        (
            "fig12",
            "query cost vs query size, Western TIGER-like",
            TigerProfile::western().generate(scale.n_western(), 5),
        )
    };
    let domain = Rect::mbr_of(items.iter().map(|i| &i.rect));
    let mut t = Table::new(
        id,
        title,
        &["area%", "avg T", "TGS", "PR", "H", "H4", "STR"],
    );
    let trees: Vec<(LoaderKind, RTree<2>)> = [
        LoaderKind::Tgs,
        LoaderKind::Pr,
        LoaderKind::Hilbert,
        LoaderKind::Hilbert4,
        LoaderKind::Str,
    ]
    .into_iter()
    .map(|k| (k, build_in_memory(k, &items, params())))
    .collect();
    for area_pct in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0] {
        let queries = square_queries(
            &domain,
            area_pct / 100.0,
            scale.queries_per_batch(),
            0xF12 + (area_pct * 100.0) as u64,
        );
        let mut row = vec![format!("{area_pct}")];
        let mut avg_t = 0.0;
        let mut costs = Vec::new();
        for (_, tree) in &trees {
            let agg = run_queries(tree, &queries);
            avg_t = agg.avg_results;
            costs.push(agg.avg_relative_cost);
        }
        row.push(format!("{avg_t:.0}"));
        row.extend(costs.into_iter().map(pct));
        t.row(row);
    }
    t.note("paper (Figs 12/13): all four variants within 100–120%; order TGS < PR < H < H4");
    t
}

/// Figure 14: query cost vs dataset size (nested Eastern subsets, 1%-area
/// square queries).
pub fn fig14(scale: Scale) -> Table {
    let profile = TigerProfile::eastern();
    let n_full = scale.n_eastern();
    let fractions = [0.126, 0.341, 0.551, 0.760, 1.0];
    let mut t = Table::new(
        "fig14",
        "query cost vs input size, Eastern subsets (1%-area squares)",
        &["rectangles", "avg T", "TGS", "PR", "H", "H4"],
    );
    for (r, frac) in fractions.iter().enumerate() {
        let n = (n_full as f64 * frac) as u32;
        let items = profile.generate(n, r as u32 + 1);
        let domain = Rect::mbr_of(items.iter().map(|i| &i.rect));
        let queries = square_queries(&domain, 0.01, scale.queries_per_batch(), 0xF14 + r as u64);
        let mut row = vec![format!("{n}")];
        let mut avg_t = 0.0;
        let mut costs = Vec::new();
        for kind in [
            LoaderKind::Tgs,
            LoaderKind::Pr,
            LoaderKind::Hilbert,
            LoaderKind::Hilbert4,
        ] {
            let tree = build_in_memory(kind, &items, params());
            let agg = run_queries(&tree, &queries);
            avg_t = agg.avg_results;
            costs.push(agg.avg_relative_cost);
        }
        row.push(format!("{avg_t:.0}"));
        row.extend(costs.into_iter().map(pct));
        t.row(row);
    }
    t.note("paper (Fig 14): flat in N, all within ~110% of optimal");
    t
}

/// Figure 15 (left): query cost over the SIZE(max_side) sweep.
pub fn fig15_size(scale: Scale) -> Table {
    let n = scale.n_synthetic();
    let mut t = Table::new(
        "fig15size",
        "query cost on SIZE(max_side), 1%-area squares",
        &["max_side", "avg T", "TGS", "PR", "H", "H4"],
    );
    for max_side in [0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let items = size_dataset(n, max_side, 0x51ED);
        let queries = square_queries(
            &unit_square(),
            0.01,
            scale.queries_per_batch(),
            0xF15 + (max_side * 1e5) as u64,
        );
        let mut row = vec![format!("{max_side}")];
        let mut avg_t = 0.0;
        let mut costs = Vec::new();
        for kind in [
            LoaderKind::Tgs,
            LoaderKind::Pr,
            LoaderKind::Hilbert,
            LoaderKind::Hilbert4,
        ] {
            let tree = build_in_memory(kind, &items, params());
            let agg = run_queries(&tree, &queries);
            avg_t = agg.avg_results;
            costs.push(agg.avg_relative_cost);
        }
        row.push(format!("{avg_t:.0}"));
        row.extend(costs.into_iter().map(pct));
        t.row(row);
    }
    t.note("paper (Fig 15 left): small rects ≈100% for all; large rects: H degrades worst, TGS notably, PR & H4 stay low");
    t
}

/// Figure 15 (middle): query cost over the ASPECT(a) sweep.
pub fn fig15_aspect(scale: Scale) -> Table {
    let n = scale.n_synthetic();
    let mut t = Table::new(
        "fig15aspect",
        "query cost on ASPECT(a), 1%-area squares",
        &["aspect", "avg T", "TGS", "PR", "H", "H4"],
    );
    for aspect in [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
        let items = aspect_dataset(n, aspect, 0xA59E);
        let queries = square_queries(
            &unit_square(),
            0.01,
            scale.queries_per_batch(),
            0xF15A + aspect as u64,
        );
        let mut row = vec![format!("{aspect:.0}")];
        let mut avg_t = 0.0;
        let mut costs = Vec::new();
        for kind in [
            LoaderKind::Tgs,
            LoaderKind::Pr,
            LoaderKind::Hilbert,
            LoaderKind::Hilbert4,
        ] {
            let tree = build_in_memory(kind, &items, params());
            let agg = run_queries(&tree, &queries);
            avg_t = agg.avg_results;
            costs.push(agg.avg_relative_cost);
        }
        row.push(format!("{avg_t:.0}"));
        row.extend(costs.into_iter().map(pct));
        t.row(row);
    }
    t.note(
        "paper (Fig 15 middle): H and TGS degrade with aspect ratio; PR ≈ H4 ≈ optimal throughout",
    );
    t
}

/// Figure 15 (right): query cost over the SKEWED(c) sweep with
/// matching skew-transformed queries.
pub fn fig15_skew(scale: Scale) -> Table {
    let n = scale.n_synthetic();
    let mut t = Table::new(
        "fig15skew",
        "query cost on SKEWED(c), skew-matched 1%-area squares",
        &["c", "avg T", "TGS", "PR", "H", "H4"],
    );
    for c in [1u32, 3, 5, 7, 9] {
        let items = skewed_dataset(n, c, 0x5E3D);
        let queries = skewed_queries(c, 0.01, scale.queries_per_batch(), 0xF15C + c as u64);
        let mut row = vec![format!("{c}")];
        let mut avg_t = 0.0;
        let mut costs = Vec::new();
        for kind in [
            LoaderKind::Tgs,
            LoaderKind::Pr,
            LoaderKind::Hilbert,
            LoaderKind::Hilbert4,
        ] {
            let tree = build_in_memory(kind, &items, params());
            let agg = run_queries(&tree, &queries);
            avg_t = agg.avg_results;
            costs.push(agg.avg_relative_cost);
        }
        row.push(format!("{avg_t:.0}"));
        row.extend(costs.into_iter().map(pct));
        t.row(row);
    }
    t.note("paper (Fig 15 right): PR flat in c (order-based construction); H, H4 and TGS degrade as skew grows");
    t
}

/// Table 1: the CLUSTER dataset with thin horizontal strip queries.
pub fn table1(scale: Scale) -> Table {
    let (clusters, per_cluster) = scale.cluster();
    let items = cluster_dataset(clusters, per_cluster, 1e-5, 0xC105);
    let queries = cluster_strip_queries(1e-5, scale.queries_per_batch(), 0x51EC);
    let mut t = Table::new(
        "table1",
        "CLUSTER dataset, strip queries (paper Table 1)",
        &["tree", "avg leaf I/Os", "% of R-tree visited", "avg T"],
    );
    for kind in [
        LoaderKind::Hilbert,
        LoaderKind::Hilbert4,
        LoaderKind::Pr,
        LoaderKind::Tgs,
    ] {
        let tree = build_in_memory(kind, &items, params());
        let agg = run_queries(&tree, &queries);
        let frac = fraction_of_leaves_visited(&tree, &agg);
        t.row(vec![
            kind.name().to_string(),
            format!("{:.0}", agg.avg_leaves),
            pct(frac),
            format!("{:.0}", agg.avg_results),
        ]);
    }
    t.note("paper (Table 1): H 32920 I/Os (37%), H4 83389 (94%), PR 1060 (1.2%), TGS 22158 (25%)");
    t.note("expected shape: PR an order of magnitude below all others");
    t
}

/// Theorem 3: the shifted-grid lower-bound dataset with an empty-output
/// line query.
pub fn thm3(scale: Scale) -> Table {
    let k = scale.worst_case_k();
    let b = params().leaf_cap as u32;
    let items = worst_case_grid(k, b);
    let q = worst_case_line_query(k, b);
    let mut t = Table::new(
        "thm3",
        "Theorem-3 worst-case grid, empty line query (leaves visited)",
        &["tree", "leaves visited", "total leaves", "fraction"],
    );
    for kind in [
        LoaderKind::Hilbert,
        LoaderKind::Hilbert4,
        LoaderKind::Tgs,
        LoaderKind::Pr,
    ] {
        let tree = build_in_memory(kind, &items, params());
        tree.warm_cache().expect("warm");
        let (hits, stats) = tree.window_with_stats(&q).expect("query");
        assert!(hits.is_empty(), "the line query must report nothing");
        let leaves = tree.stats().expect("stats").num_leaves();
        t.row(vec![
            kind.name().to_string(),
            stats.leaves_visited.to_string(),
            leaves.to_string(),
            pct(stats.leaves_visited as f64 / leaves as f64),
        ]);
    }
    let n = items.len() as f64;
    let bound = (n / b as f64).sqrt();
    t.note(format!(
        "Theorem 3: H/H4/TGS must visit Θ(N/B) = all leaves; PR visits O(√(N/B)) ≈ {bound:.0}"
    ));
    t
}

/// Space utilization across loaders and datasets (§3.3: "above 99%").
pub fn util(scale: Scale) -> Table {
    let n = scale.n_synthetic() / 2;
    let datasets: Vec<(&str, Vec<Item<2>>)> = vec![
        ("UNIFORM", uniform_points(n, 0x07)),
        ("SIZE(0.01)", size_dataset(n, 0.01, 0x51ED)),
        ("ASPECT(100)", aspect_dataset(n, 100.0, 0xA59E)),
        ("SKEWED(5)", skewed_dataset(n, 5, 0x5E3D)),
        ("TIGER-East", TigerProfile::eastern().generate(n, 5)),
    ];
    let mut t = Table::new(
        "util",
        "space utilization (entries stored / slots allocated)",
        &["dataset", "PR", "H", "H4", "TGS", "STR"],
    );
    for (name, items) in &datasets {
        let mut row = vec![name.to_string()];
        for kind in LoaderKind::all() {
            let tree = build_in_memory(kind, items, params());
            let s = tree.stats().expect("stats");
            row.push(pct(s.utilization()));
        }
        t.row(row);
    }
    t.note("paper (§3.3): 'In all experiments and for all R-trees we achieved a space utilization above 99%.'");
    t
}

/// §4 experiments the paper leaves as future work: update heuristics on a
/// bulk-loaded PR-tree, and the logarithmic-method LPR-tree.
pub fn dyn_experiment(scale: Scale) -> Vec<Table> {
    let n = scale.n_synthetic() / 2;
    let n_updates = scale.n_updates().min(n / 2);
    let items = uniform_points(n, 0xD1);
    let queries = square_queries(&unit_square(), 0.01, scale.queries_per_batch(), 0xD2);

    // (a) Degradation of a bulk-loaded PR-tree under Guttman updates.
    let mut deg = Table::new(
        "dyn-degradation",
        "PR-tree query cost before/after Guttman updates (quadratic split)",
        &["state", "avg rel. cost", "avg leaf I/Os", "utilization"],
    );
    let mut tree = build_in_memory(LoaderKind::Pr, &items, params());
    let agg0 = run_queries(&tree, &queries);
    let s0 = tree.stats().expect("stats");
    deg.row(vec![
        "bulk-loaded".into(),
        pct(agg0.avg_relative_cost),
        f2(agg0.avg_leaves),
        pct(s0.utilization()),
    ]);
    // Random delete+reinsert churn.
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut live = items.clone();
    let mut next_id = n;
    #[allow(clippy::explicit_counter_loop)] // next_id doubles as item id
    for _ in 0..n_updates {
        let idx = (next() % live.len() as u64) as usize;
        let victim = live.swap_remove(idx);
        tree.delete(&victim, SplitPolicy::Quadratic)
            .expect("delete");
        let x = (next() % 1_000_000) as f64 / 1_000_000.0;
        let y = (next() % 1_000_000) as f64 / 1_000_000.0;
        let fresh = Item::new(Rect::xyxy(x, y, x, y), next_id);
        next_id += 1;
        tree.insert(fresh, SplitPolicy::Quadratic).expect("insert");
        live.push(fresh);
    }
    let agg1 = run_queries(&tree, &queries);
    let s1 = tree.stats().expect("stats");
    deg.row(vec![
        format!("after {n_updates} upd."),
        pct(agg1.avg_relative_cost),
        f2(agg1.avg_leaves),
        pct(s1.utilization()),
    ]);
    // Rebuild from scratch for reference.
    let rebuilt = build_in_memory(LoaderKind::Pr, &live, params());
    let agg2 = run_queries(&rebuilt, &queries);
    deg.row(vec![
        "rebuilt".into(),
        pct(agg2.avg_relative_cost),
        f2(agg2.avg_leaves),
        pct(rebuilt.stats().expect("stats").utilization()),
    ]);
    deg.note("§4: updates void the guarantee; degradation vs the rebuilt tree quantifies it");

    // (b) LPR-tree (logarithmic method) vs static PR-tree.
    let mut lpr_table = Table::new(
        "dyn-lpr",
        "LPR-tree (logarithmic method) vs statically bulk-loaded PR-tree",
        &[
            "structure",
            "avg rel. cost",
            "avg leaf I/Os",
            "components",
            "amortized insert I/Os",
        ],
    );
    let p = params();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(p.page_size));
    let mut lpr = LprTree::<2>::new(Arc::clone(&dev), p, (p.leaf_cap * 16).max(1024));
    let before = dev.io_stats();
    for &it in &items {
        lpr.insert(it).expect("lpr insert");
    }
    let insert_io = dev.io_stats().since(before);
    let mut agg = QueryAgg {
        queries: queries.len() as u64,
        ..Default::default()
    };
    let mut rel_sum = 0.0;
    let mut rel_n = 0u64;
    for q in &queries {
        let (hits, stats) = lpr.window(q).expect("lpr query");
        agg.total_leaves += stats.leaves_visited;
        agg.total_results += hits.len() as u64;
        if let Some(rel) = stats.relative_cost(p.leaf_cap) {
            rel_sum += rel;
            rel_n += 1;
        }
    }
    let lpr_rel = if rel_n > 0 {
        rel_sum / rel_n as f64
    } else {
        0.0
    };
    lpr_table.row(vec![
        "LPR-tree".into(),
        pct(lpr_rel),
        f2(agg.total_leaves as f64 / agg.queries as f64),
        lpr.num_components().to_string(),
        f2(insert_io.total() as f64 / n as f64),
    ]);
    let static_tree = build_in_memory(LoaderKind::Pr, &items, p);
    let sagg = run_queries(&static_tree, &queries);
    lpr_table.row(vec![
        "static PR".into(),
        pct(sagg.avg_relative_cost),
        f2(sagg.avg_leaves),
        "1".into(),
        "-".into(),
    ]);
    lpr_table
        .note("§1.2: the logarithmic method keeps the query bound at an O(log) component fan-out");

    vec![deg, lpr_table]
}

/// Structural ablations of the PR-tree (DESIGN.md §7): priority-leaf
/// size and kd-split snapping, measured in query I/O and utilization.
pub fn ablation(scale: Scale) -> Table {
    use pr_tree::bulk::pr::PrTreeLoader;
    use pr_tree::bulk::BulkLoader;
    let n = scale.n_synthetic() / 2;
    let items = uniform_points(n, 0xAB1);
    let queries = square_queries(&unit_square(), 0.01, scale.queries_per_batch(), 0xAB2);
    let p = params();
    let mut t = Table::new(
        "ablation",
        "PR-tree structural ablations (uniform points, 1%-area squares)",
        &["variant", "avg rel. cost", "utilization", "leaves"],
    );
    let variants: Vec<(String, PrTreeLoader)> = vec![
        (
            "prio=B, snapped (paper)".into(),
            PrTreeLoader {
                priority_size: None,
                snap_splits: true,
            },
        ),
        (
            "prio=B, exact median".into(),
            PrTreeLoader {
                priority_size: None,
                snap_splits: false,
            },
        ),
        (
            format!("prio=B/4 ({})", p.leaf_cap / 4),
            PrTreeLoader {
                priority_size: Some(p.leaf_cap / 4),
                snap_splits: true,
            },
        ),
        (
            "prio=1 (Agarwal et al.)".into(),
            PrTreeLoader {
                priority_size: Some(1),
                snap_splits: true,
            },
        ),
    ];
    for (label, loader) in variants {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(p.page_size));
        let tree = loader.load(dev, p, items.clone()).expect("build");
        let agg = run_queries(&tree, &queries);
        let s = tree.stats().expect("stats");
        t.row(vec![
            label,
            pct(agg.avg_relative_cost),
            pct(s.utilization()),
            s.num_leaves().to_string(),
        ]);
    }
    t.note("priority leaves of size B are what make the PR-tree practical: shrinking them toward Agarwal et al.'s size-1 leaves destroys both utilization and query cost");
    t
}

/// cold_open: blocks touched between "process starts" and "first window
/// query answered" for a persisted index (`pr-store` open) versus a full
/// rebuild from the raw rectangles — the persistence subsystem's reason
/// to exist, in one table.
pub fn cold_open(scale: Scale) -> Table {
    use pr_store::Store;
    let n = scale.n_cold_open();
    let items = uniform_points(n, 0xC01D);
    let p = params();
    let q = square_queries(&unit_square(), 0.001, 1, 0xC01E)[0];

    // Persist once (cost charged to neither path; an index is written
    // once and opened on every restart).
    let dir = std::env::temp_dir();
    let path = dir.join(format!("pr-bench-cold-open-{}.prt", std::process::id()));
    let built = build_in_memory(LoaderKind::Pr, &items, p);
    let mut store = Store::create::<2>(&path, p).expect("create store");
    store.save(&built).expect("save");
    drop((store, built));

    let mut t = Table::new(
        "cold_open",
        "cold start to first query: reopen persisted index vs full rebuild",
        &[
            "path",
            "blocks read",
            "blocks written",
            "first-query leaves",
            "seconds",
        ],
    );

    // Path 1: rebuild from raw rectangles, warm the cache, run the query.
    let t0 = std::time::Instant::now();
    let rebuilt = build_in_memory(LoaderKind::Pr, &items, p);
    rebuilt.warm_cache().expect("warm");
    let (rebuild_hits, rebuild_stats) = rebuilt.window_with_stats(&q).expect("query");
    let rebuild_secs = t0.elapsed().as_secs_f64();
    let io = rebuilt.device().io_stats();
    t.row(vec![
        "rebuild".into(),
        blocks(io.reads),
        blocks(io.writes),
        rebuild_stats.leaves_visited.to_string(),
        f2(rebuild_secs),
    ]);

    // Path 2: reopen the committed snapshot, warm the cache, same query.
    let t0 = std::time::Instant::now();
    let reopened = Store::open_tree::<2>(&path).expect("open store");
    reopened.warm_cache().expect("warm");
    let (open_hits, open_stats) = reopened.window_with_stats(&q).expect("query");
    let open_secs = t0.elapsed().as_secs_f64();
    let io = reopened.device().io_stats();
    t.row(vec![
        "cold open".into(),
        blocks(io.reads),
        blocks(io.writes),
        open_stats.leaves_visited.to_string(),
        f2(open_secs),
    ]);
    assert_eq!(
        rebuild_hits, open_hits,
        "persisted and rebuilt trees must answer identically"
    );

    t.note(format!(
        "n = {n} rectangles; open reads internal nodes + touched leaves only (plus 3 fixed-size header records outside block accounting), rebuild rewrites every page"
    ));
    t.note(format!(
        "wall-clock speedup of open over rebuild: {:.0}x",
        rebuild_secs / open_secs.max(1e-9)
    ));
    std::fs::remove_file(&path).ok();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature scale so the full experiment matrix can run in tests.
    fn tiny() -> Scale {
        Scale::Small
    }

    #[test]
    fn every_listed_experiment_runs() {
        // Smoke-run the cheapest experiments end-to-end at small scale;
        // expensive ones are covered by the binary run in CI/EXPERIMENTS.
        for name in ["table1", "thm3"] {
            let tables = run(name, tiny()).expect("known experiment");
            assert!(!tables.is_empty());
            for t in &tables {
                assert!(!t.rows.is_empty(), "{name} produced no rows");
            }
        }
        assert!(run("nonsense", tiny()).is_none());
    }

    #[test]
    fn all_names_resolve() {
        for name in all_names() {
            // Names must be dispatchable (checked without executing).
            let known = matches!(
                *name,
                "fig9"
                    | "fig10"
                    | "fig11"
                    | "fig12"
                    | "fig13"
                    | "fig14"
                    | "fig15size"
                    | "fig15aspect"
                    | "fig15skew"
                    | "table1"
                    | "thm3"
                    | "util"
                    | "dyn"
                    | "ablation"
                    | "cold_open"
            );
            assert!(known, "{name} not dispatchable");
        }
    }

    #[test]
    fn thm3_shows_the_separation() {
        let t = thm3(Scale::Small);
        // Row order: H, H4, TGS, PR. PR must visit far fewer leaves.
        let visited: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].parse::<f64>().unwrap())
            .collect();
        let (h, h4, tgs, pr) = (visited[0], visited[1], visited[2], visited[3]);
        assert!(pr * 5.0 < h, "PR {pr} should be ≪ H {h}");
        assert!(pr * 5.0 < h4, "PR {pr} should be ≪ H4 {h4}");
        assert!(pr * 5.0 < tgs, "PR {pr} should be ≪ TGS {tgs}");
    }
}
