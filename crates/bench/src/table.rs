//! Plain-text result tables mirroring the paper's figures.

use pr_obs::json::{JsonArr, JsonObj};
use std::fmt;

/// One experiment's results.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id from DESIGN.md ("fig9", "table1", …).
    pub id: String,
    /// Human title (what the paper figure shows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper comparison, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a note shown under the table.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Serializes to a JSON object through the workspace's shared
    /// encoder (`pr_obs::json`; the offline build has no serde). Field
    /// layout matches what `#[derive(Serialize)]` produced.
    pub fn to_json(&self) -> String {
        let mut rows = JsonArr::new();
        for r in &self.rows {
            let mut cells = JsonArr::new();
            for c in r {
                cells.push_str(c);
            }
            rows.push_raw(cells.finish());
        }
        JsonObj::new()
            .str("id", &self.id)
            .str("title", &self.title)
            .strings("headers", &self.headers)
            .raw("rows", &rows.finish())
            .strings("notes", &self.notes)
            .finish()
    }
}

/// Serializes a slice of tables as a versioned JSON document: one
/// `{"schema_version":N,"tables":[...]}` object, one table per line —
/// enough structure for downstream tooling and diffable output files.
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut arr = JsonArr::new();
    for t in tables {
        arr.push_raw(t.to_json());
    }
    format!(
        "{{\n\"schema_version\": {},\n\"tables\": {}\n}}",
        pr_obs::SCHEMA_VERSION,
        arr.finish_pretty()
    )
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a ratio as the paper's percentage style ("112%").
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Formats a float with a sensible precision.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a block count in millions when large (paper: "3.1 mln").
pub fn blocks(x: u64) -> String {
    if x >= 1_000_000 {
        format!("{:.2} mln", x as f64 / 1e6)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("figX", "demo", &["tree", "I/Os"]);
        t.row(vec!["PR".into(), "123".into()]);
        t.row(vec!["TGS".into(), "4567".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("PR"));
        assert!(s.contains("4567"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(1.12), "112%");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(blocks(1_234), "1234");
        assert_eq!(blocks(3_100_000), "3.10 mln");
    }

    #[test]
    fn serializes_to_json() {
        let mut t = Table::new("id", "title", &["a"]);
        t.row(vec!["1".into()]);
        let json = t.to_json();
        assert!(json.contains("\"id\":\"id\""));
        assert!(json.contains("\"rows\":[[\"1\"]]"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut t = Table::new("x", "quote \" backslash \\ newline \n", &["h"]);
        t.note("tab\there");
        let json = t.to_json();
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
        assert!(json.contains("tab\\there"));
        let doc = tables_to_json(&[t.clone(), t]);
        assert!(doc.contains("\"schema_version\""));
        assert!(doc.contains("\"tables\": [\n"));
    }
}
