//! External multiway merge sort.
//!
//! The classic `O(N/B · log_{M/B}(N/B))` sort every bulk-loading algorithm
//! in the paper charges to "the number of I/Os needed to sort N elements":
//!
//! 1. **Run formation** — read the input sequentially, fill main memory
//!    (`M` bytes), sort in place, write a sorted run; repeat.
//! 2. **Merge passes** — repeatedly merge up to `k = M/B − 1` runs into
//!    one, buffering one block per input run plus one output block, until
//!    a single run remains.
//!
//! With the paper's parameters (64MB of memory for TPIE, 4KB blocks) a
//! dataset of 10–17M records sorts in one run-formation pass plus a single
//! merge pass, which is why its measured constants are small.

use crate::device::BlockDevice;
use crate::error::EmError;
use crate::stream::{Record, Stream, StreamReader, StreamWriter};
use crate::Result;
use std::cmp::Ordering;

/// Memory configuration for the external sort.
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Main-memory budget in bytes (the model's `M`). Run formation sorts
    /// `memory_bytes / R::SIZE` records at a time; merges use
    /// `memory_bytes / block_size − 1` input buffers.
    pub memory_bytes: usize,
}

impl SortConfig {
    /// Budget of `memory_bytes` bytes.
    pub fn with_memory(memory_bytes: usize) -> Self {
        SortConfig { memory_bytes }
    }

    /// Records that fit in memory during run formation.
    pub fn run_capacity<R: Record>(&self) -> usize {
        (self.memory_bytes / R::SIZE).max(1)
    }

    /// Merge fan-in on a device with the given block size.
    pub fn fan_in(&self, block_size: usize) -> usize {
        (self.memory_bytes / block_size).saturating_sub(1).max(2)
    }

    fn validate(&self, block_size: usize, record_size: usize) -> Result<()> {
        if self.memory_bytes < 3 * block_size {
            return Err(EmError::BudgetTooSmall(format!(
                "external sort needs at least 3 blocks of memory ({} bytes), got {}",
                3 * block_size,
                self.memory_bytes
            )));
        }
        if record_size > block_size {
            return Err(EmError::BudgetTooSmall(format!(
                "record size {record_size} exceeds block size {block_size}"
            )));
        }
        Ok(())
    }
}

/// Sorts `input` by `R`'s natural order. See [`external_sort_by`].
pub fn external_sort<R: Record + Ord>(
    dev: &dyn BlockDevice,
    input: &Stream,
    config: SortConfig,
) -> Result<Stream> {
    external_sort_by(dev, input, config, |a: &R, b: &R| a.cmp(b))
}

/// Sorts `input` with a caller-supplied comparator, returning a new sorted
/// stream on the same device. The input stream is left untouched (its
/// blocks are not reclaimed; the simulated disk is append-only).
pub fn external_sort_by<R, F>(
    dev: &dyn BlockDevice,
    input: &Stream,
    config: SortConfig,
    mut cmp: F,
) -> Result<Stream>
where
    R: Record,
    F: FnMut(&R, &R) -> Ordering,
{
    config.validate(dev.block_size(), R::SIZE)?;
    if input.is_empty() {
        return StreamWriter::<R>::new(dev).finish();
    }

    // Phase 1: run formation.
    let cap = config.run_capacity::<R>();
    let mut runs: Vec<Stream> = Vec::new();
    {
        let mut reader = StreamReader::<R>::new(dev, input);
        let mut buf: Vec<R> = Vec::with_capacity(cap.min(input.len() as usize));
        loop {
            let rec = reader.next_record()?;
            if let Some(r) = rec {
                buf.push(r);
            }
            if buf.len() == cap || (!buf.is_empty() && reader.remaining() == 0) {
                buf.sort_by(&mut cmp);
                let mut w = StreamWriter::<R>::new(dev);
                for r in &buf {
                    w.push(r)?;
                }
                runs.push(w.finish()?);
                buf.clear();
            }
            if reader.remaining() == 0 {
                break;
            }
        }
    }

    // Phase 2: merge passes. Consumed runs are temporary files: their
    // blocks are released as soon as the merged run replaces them.
    let fan_in = config.fan_in(dev.block_size());
    while runs.len() > 1 {
        let mut next: Vec<Stream> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            next.push(merge_runs(dev, group, &mut cmp)?);
        }
        for run in runs {
            run.discard(dev);
        }
        runs = next;
    }
    Ok(runs.pop().expect("at least one run for non-empty input"))
}

/// Entry in the merge heap; reversed so `BinaryHeap` pops the minimum.
struct HeapEntry<R> {
    record: R,
    source: usize,
    seq: u64, // stabilizer: preserves input order among equal keys
}

fn merge_runs<R, F>(dev: &dyn BlockDevice, runs: &[Stream], cmp: &mut F) -> Result<Stream>
where
    R: Record,
    F: FnMut(&R, &R) -> Ordering,
{
    let mut readers: Vec<StreamReader<R>> =
        runs.iter().map(|r| StreamReader::new(dev, r)).collect();
    let mut writer = StreamWriter::<R>::new(dev);

    // BinaryHeap needs Ord; we wrap entries with an index into a scratch
    // table so the comparator closure can be consulted. Simplest correct
    // approach without requiring R: Ord — keep the heap of keys ordered by
    // a total order derived from cmp via explicit comparisons at push time
    // is impossible; instead run a simple loser-selection over the heads
    // when fan-in is small, and a heap keyed by an order-preserving
    // encoded key is impossible for general R. We therefore implement the
    // heap manually below.
    let mut heads: Vec<Option<HeapEntry<R>>> = Vec::with_capacity(readers.len());
    let mut seq = 0u64;
    for (i, r) in readers.iter_mut().enumerate() {
        let head = r.next_record()?;
        heads.push(head.map(|record| {
            seq += 1;
            HeapEntry {
                record,
                source: i,
                seq,
            }
        }));
    }

    // A manual binary heap of indices into `heads`, ordered by cmp.
    let mut heap = ManualHeap::new(heads.len());
    for i in 0..heads.len() {
        if heads[i].is_some() {
            heap.push(i, &heads, cmp);
        }
    }
    while let Some(i) = heap.pop(&heads, cmp) {
        let entry = heads[i].take().expect("popped index has a head");
        writer.push(&entry.record)?;
        if let Some(record) = readers[i].next_record()? {
            seq += 1;
            heads[i] = Some(HeapEntry {
                record,
                source: i,
                seq,
            });
            heap.push(i, &heads, cmp);
        }
    }
    writer.finish()
}

/// Minimal binary min-heap of source indices, ordered by the caller's
/// comparator applied to the per-source head records (ties broken by
/// arrival sequence, making the merge stable).
struct ManualHeap {
    data: Vec<usize>,
}

impl ManualHeap {
    fn new(cap: usize) -> Self {
        ManualHeap {
            data: Vec::with_capacity(cap),
        }
    }

    fn less<R, F>(a: &HeapEntry<R>, b: &HeapEntry<R>, cmp: &mut F) -> bool
    where
        F: FnMut(&R, &R) -> Ordering,
    {
        match cmp(&a.record, &b.record) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => (a.source, a.seq) < (b.source, b.seq),
        }
    }

    fn push<R, F>(&mut self, idx: usize, heads: &[Option<HeapEntry<R>>], cmp: &mut F)
    where
        F: FnMut(&R, &R) -> Ordering,
    {
        self.data.push(idx);
        let mut i = self.data.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            let (a, b) = (
                heads[self.data[i]].as_ref().expect("heap index live"),
                heads[self.data[parent]].as_ref().expect("heap index live"),
            );
            if Self::less(a, b, cmp) {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop<R, F>(&mut self, heads: &[Option<HeapEntry<R>>], cmp: &mut F) -> Option<usize>
    where
        F: FnMut(&R, &R) -> Ordering,
    {
        if self.data.is_empty() {
            return None;
        }
        let top = self.data[0];
        let last = self.data.pop().expect("nonempty");
        if !self.data.is_empty() {
            self.data[0] = last;
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut smallest = i;
                for c in [l, r] {
                    if c < self.data.len() {
                        let a = heads[self.data[c]].as_ref().expect("heap index live");
                        let b = heads[self.data[smallest]]
                            .as_ref()
                            .expect("heap index live");
                        if Self::less(a, b, cmp) {
                            smallest = c;
                        }
                    }
                }
                if smallest == i {
                    break;
                }
                self.data.swap(i, smallest);
                i = smallest;
            }
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn sort_vec(input: Vec<u32>, block: usize, mem: usize) -> (Vec<u32>, crate::IoStats) {
        let dev = MemDevice::new(block);
        let s = Stream::from_iter(&dev, input.iter().copied()).unwrap();
        let before = dev.io_stats();
        let sorted = external_sort::<u32>(&dev, &s, SortConfig::with_memory(mem)).unwrap();
        let stats = dev.io_stats().since(before);
        (sorted.read_all::<u32>(&dev).unwrap(), stats)
    }

    #[test]
    fn sorts_small_input_single_run() {
        let (out, _) = sort_vec(vec![5, 3, 9, 1, 1, 8], 32, 1024);
        assert_eq!(out, vec![1, 1, 3, 5, 8, 9]);
    }

    #[test]
    fn sorts_multi_run_multi_pass() {
        // 32-byte blocks (8 u32), 96-byte memory = 24 records per run,
        // fan-in = 2: forces several merge passes.
        let input: Vec<u32> = (0..500).rev().collect();
        let (out, stats) = sort_vec(input, 32, 96);
        assert_eq!(out, (0..500).collect::<Vec<_>>());
        assert!(stats.total() > 0);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = sort_vec(vec![], 32, 1024);
        assert!(out.is_empty());
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn already_sorted_and_all_equal() {
        let (out, _) = sort_vec(vec![7; 100], 32, 96);
        assert_eq!(out, vec![7; 100]);
        let (out, _) = sort_vec((0..200).collect(), 32, 96);
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn custom_comparator_descending() {
        let dev = MemDevice::new(32);
        let s = Stream::from_iter(&dev, [3u32, 1, 4, 1, 5]).unwrap();
        let sorted =
            external_sort_by::<u32, _>(&dev, &s, SortConfig::with_memory(1024), |a, b| b.cmp(a))
                .unwrap();
        assert_eq!(sorted.read_all::<u32>(&dev).unwrap(), vec![5, 4, 3, 1, 1]);
    }

    #[test]
    fn budget_too_small_is_error() {
        let dev = MemDevice::new(1024);
        let s = Stream::from_iter(&dev, 0..10u32).unwrap();
        let err = external_sort::<u32>(&dev, &s, SortConfig::with_memory(100));
        assert!(matches!(err, Err(EmError::BudgetTooSmall(_))));
    }

    #[test]
    fn io_cost_matches_pass_structure() {
        // N = 4096 u32 records, 64-byte blocks -> 16 rec/block -> 256 blocks.
        // Memory 1024 bytes -> runs of 256 records (16 runs of 16 blocks),
        // fan-in = 1024/64 - 1 = 15 -> 2 merge passes (16 -> 2 -> 1).
        let n_blocks = 256u64;
        let input: Vec<u32> = (0..4096).rev().collect();
        let (out, stats) = sort_vec(input, 64, 1024);
        assert_eq!(out, (0..4096).collect::<Vec<_>>());
        // run formation: read 256 + write 256; each merge pass: read 256 +
        // write 256. Total = 3 * 512 = 1536.
        assert_eq!(stats.reads, 3 * n_blocks);
        assert_eq!(stats.writes, 3 * n_blocks);
    }

    #[test]
    fn single_pass_when_memory_is_large() {
        let input: Vec<u32> = (0..4096).rev().collect();
        let (_, stats) = sort_vec(input, 64, 1 << 20);
        // One run: read input once, write once; no merge needed.
        assert_eq!(stats.reads, 256);
        assert_eq!(stats.writes, 256);
    }

    #[test]
    fn merge_is_stable_for_equal_keys() {
        // Sort pairs by the low 16 bits only; high bits record input order.
        let dev = MemDevice::new(64);
        let items: Vec<u32> = (0..1000u32).map(|i| (i << 16) | (i % 7)).collect();
        let s = Stream::from_iter(&dev, items.iter().copied()).unwrap();
        let sorted = external_sort_by::<u32, _>(
            &dev,
            &s,
            SortConfig::with_memory(256), // tiny: many runs, deep merges
            |a, b| (a & 0xFFFF).cmp(&(b & 0xFFFF)),
        )
        .unwrap();
        let out = sorted.read_all::<u32>(&dev).unwrap();
        for w in out.windows(2) {
            let (ka, kb) = (w[0] & 0xFFFF, w[1] & 0xFFFF);
            assert!(ka <= kb);
            if ka == kb {
                assert!(w[0] >> 16 < w[1] >> 16, "equal keys keep input order");
            }
        }
    }
}
