//! A slab-backed LRU cache.
//!
//! `O(1)` get / insert / evict via an intrusive doubly-linked list over a
//! `Vec` slab (no per-node allocation, no `unsafe`). Used by the buffer
//! pool here and by the R-tree node cache in `pr-tree`.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: Option<K>,
    // `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity as configured at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Looks up `key`, marking it most recently used. Hit/miss accounting
    /// is the caller's job (see `pr_em::stats::HitCounters`): the users of
    /// this cache count at their own layer, where batching is possible.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.touch(idx);
                self.slab[idx].value.as_ref()
            }
            None => None,
        }
    }

    /// Mutable lookup, marking the entry most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.touch(idx);
                self.slab[idx].value.as_mut()
            }
            None => None,
        }
    }

    /// Looks up `key` without disturbing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.slab[idx].value.as_ref())
    }

    /// Inserts `key → value` as most recently used.
    ///
    /// Returns the evicted least-recently-used entry when the cache was
    /// full, or the replaced value (with its key) when `key` was already
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            let old = self.slab[idx].value.replace(value);
            self.touch(idx);
            return old.map(|v| (key, v));
        }
        let evicted = if self.map.len() == self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let idx = if let Some(slot) = self.free.pop() {
            self.slab[slot].key = Some(key.clone());
            self.slab[slot].value = Some(value);
            slot
        } else {
            self.slab.push(Entry {
                key: Some(key.clone()),
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.slab[idx].key = None;
        self.slab[idx].value.take()
    }

    /// Pops the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.slab[idx].key.take().expect("live entry has a key");
        self.map.remove(&key);
        self.unlink(idx);
        self.free.push(idx);
        let value = self.slab[idx].value.take().expect("live entry has a value");
        Some((key, value))
    }

    /// Iterates over entries from most to least recently used.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut idx = self.head;
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let e = &self.slab[idx];
            idx = e.next;
            Some((
                e.key.as_ref().expect("live entry has a key"),
                e.value.as_ref().expect("live entry has a value"),
            ))
        })
    }

    /// Removes all entries, returning them from most to least recently
    /// used (used by the pool to flush dirty pages on shutdown).
    pub fn drain(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        let mut idx = self.head;
        while idx != NIL {
            let next = self.slab[idx].next;
            let key = self.slab[idx].key.take().expect("live entry");
            let value = self.slab[idx].value.take().expect("live entry");
            self.free.push(idx);
            out.push((key, value));
            idx = next;
        }
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_basic() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("b", 2), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"z"), None);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut c = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        c.get(&1); // 2 is now LRU
        let evicted = c.insert(3, "three");
        assert_eq!(evicted, Some((2, "two")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
    }

    #[test]
    fn reinsert_replaces_and_refreshes() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), Some((1, 10)));
        // 2 is LRU now, so inserting 3 evicts it.
        assert_eq!(c.insert(3, 30), Some((2, 20)));
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut c = LruCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.remove(&1), Some(1));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
        c.insert(3, 3);
        c.insert(4, 4);
        assert_eq!(c.len(), 3);
        let keys: Vec<_> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, [4, 3, 2]); // MRU → LRU
    }

    #[test]
    fn pop_lru_in_order() {
        let mut c = LruCache::new(3);
        c.insert('a', 1);
        c.insert('b', 2);
        c.insert('c', 3);
        c.get(&'a');
        assert_eq!(c.pop_lru(), Some(('b', 2)));
        assert_eq!(c.pop_lru(), Some(('c', 3)));
        assert_eq!(c.pop_lru(), Some(('a', 1)));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        c.insert(1, 1);
        assert_eq!(c.insert(2, 2), Some((1, 1)));
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn drain_returns_mru_order_and_empties() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i * 10);
        }
        c.get(&0);
        let all = c.drain();
        assert_eq!(all, vec![(0, 0), (3, 30), (2, 20), (1, 10)]);
        assert!(c.is_empty());
        c.insert(9, 90);
        assert_eq!(c.get(&9), Some(&90));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.peek(&1), Some(&1));
        // 1 is still LRU because peek doesn't refresh.
        assert_eq!(c.insert(3, 3), Some((1, 1)));
    }

    #[test]
    fn stress_against_naive_model() {
        use std::collections::VecDeque;
        let cap = 8;
        let mut c = LruCache::new(cap);
        let mut model: VecDeque<(u32, u32)> = VecDeque::new(); // front = MRU
        let mut x: u64 = 0x12345678;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..10_000 {
            let k = (rng() % 20) as u32;
            match rng() % 3 {
                0 => {
                    let got = c.get(&k).copied();
                    let want = model.iter().find(|(mk, _)| *mk == k).map(|(_, v)| *v);
                    assert_eq!(got, want);
                    if want.is_some() {
                        let pos = model.iter().position(|(mk, _)| *mk == k).unwrap();
                        let e = model.remove(pos).unwrap();
                        model.push_front(e);
                    }
                }
                1 => {
                    let v = (rng() % 1000) as u32;
                    c.insert(k, v);
                    if let Some(pos) = model.iter().position(|(mk, _)| *mk == k) {
                        model.remove(pos);
                    } else if model.len() == cap {
                        model.pop_back();
                    }
                    model.push_front((k, v));
                }
                _ => {
                    let got = c.remove(&k);
                    let pos = model.iter().position(|(mk, _)| *mk == k);
                    assert_eq!(got, pos.map(|p| model.remove(p).unwrap().1));
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
