//! Substrate error type.

use std::fmt;

/// Errors surfaced by the external-memory substrate.
#[derive(Debug)]
pub enum EmError {
    /// Underlying OS-level I/O failure (file-backed devices only).
    Io(std::io::Error),
    /// A block id outside the device's allocated range was accessed.
    BlockOutOfRange {
        /// Requested block.
        block: u64,
        /// Number of allocated blocks.
        len: u64,
    },
    /// A buffer with a size different from the device block size was used.
    BadBufferSize {
        /// Buffer length supplied by the caller.
        got: usize,
        /// Device block size.
        want: usize,
    },
    /// The memory budget is too small for the requested operation.
    BudgetTooSmall(String),
    /// A record failed to decode (corrupt page or logic error).
    Corrupt(String),
    /// A page id too large for the 32-bit entry pointer was produced
    /// (the device outgrew 2^32 blocks).
    PageIdOverflow {
        /// The offending page id.
        page: u64,
    },
    /// A write was attempted on a read-only device (e.g. an opened,
    /// committed store snapshot).
    ReadOnly,
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmError::Io(e) => write!(f, "I/O error: {e}"),
            EmError::BlockOutOfRange { block, len } => {
                write!(f, "block {block} out of range (device has {len} blocks)")
            }
            EmError::BadBufferSize { got, want } => {
                write!(f, "buffer size {got} does not match block size {want}")
            }
            EmError::BudgetTooSmall(msg) => write!(f, "memory budget too small: {msg}"),
            EmError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            EmError::PageIdOverflow { page } => {
                write!(f, "page id {page} does not fit in a 32-bit entry pointer")
            }
            EmError::ReadOnly => write!(f, "device is read-only"),
        }
    }
}

impl std::error::Error for EmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EmError {
    fn from(e: std::io::Error) -> Self {
        EmError::Io(e)
    }
}

/// True for I/O error kinds a caller can reasonably expect to clear up
/// when conditions change — the transient side of the transient-vs-fatal
/// classification the upper layers' retry and degraded-mode logic is
/// built on: interrupted syscalls, a full disk or quota (space can be
/// freed), timeouts and would-block. `EIO` and everything else are
/// fatal: the device itself failed, retrying cannot help.
pub fn io_error_is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::StorageFull
            | std::io::ErrorKind::QuotaExceeded
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

impl EmError {
    /// True when the underlying failure is transient per
    /// [`io_error_is_transient`] (only I/O-backed variants can be).
    pub fn is_transient(&self) -> bool {
        matches!(self, EmError::Io(e) if io_error_is_transient(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EmError::BlockOutOfRange { block: 9, len: 4 };
        assert!(e.to_string().contains("block 9"));
        let e = EmError::BadBufferSize {
            got: 100,
            want: 4096,
        };
        assert!(e.to_string().contains("4096"));
        let e: EmError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e = EmError::PageIdOverflow { page: u64::MAX };
        assert!(e.to_string().contains("32-bit"));
        assert!(EmError::ReadOnly.to_string().contains("read-only"));
    }
}
