//! Write-back LRU buffer pool over a block device.
//!
//! The paper's query experiments "cached all internal nodes" (§3.3,
//! footnote 5); its ablation in the same footnote disables the cache. The
//! pool provides both ends of that spectrum: a capacity-bounded LRU of
//! block frames, with dirty tracking and write-back on eviction.
//!
//! A cache **hit does not count as an I/O**; a miss costs one device read,
//! and evicting a dirty frame costs one device write — the standard
//! buffer-pool cost model.

use crate::device::{BlockDevice, BlockId};
use crate::lru::LruCache;
use crate::stats::HitCounters;
use crate::Result;
use parking_lot::Mutex;
use std::sync::Arc;

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
}

struct PoolInner {
    frames: LruCache<BlockId, Frame>,
}

/// An LRU buffer pool caching whole blocks of a shared device.
pub struct BufferPool {
    device: Arc<dyn BlockDevice>,
    inner: Mutex<PoolInner>,
    // Hit accounting lives outside the frame lock so concurrent readers
    // of `hit_stats` never contend with frame traffic.
    hits: HitCounters,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity_blocks` frames.
    pub fn new(device: Arc<dyn BlockDevice>, capacity_blocks: usize) -> Self {
        BufferPool {
            device,
            inner: Mutex::new(PoolInner {
                frames: LruCache::new(capacity_blocks.max(1)),
            }),
            hits: HitCounters::new(),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    /// Reads `block` through the cache into `buf`.
    pub fn read(&self, block: BlockId, buf: &mut [u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&block) {
            buf.copy_from_slice(&frame.data);
            drop(inner);
            self.hits.add_hits(1);
            return Ok(());
        }
        drop(inner);
        self.hits.add_misses(1);
        self.device.read_block(block, buf)?;
        let mut inner = self.inner.lock();
        let evicted = inner.frames.insert(
            block,
            Frame {
                data: buf.to_vec().into_boxed_slice(),
                dirty: false,
            },
        );
        drop(inner);
        if let Some((id, frame)) = evicted {
            if frame.dirty {
                self.device.write_block(id, &frame.data)?;
            }
        }
        Ok(())
    }

    /// Writes `buf` to `block` through the cache (write-back: the device
    /// sees the write only on eviction or [`BufferPool::flush`]).
    pub fn write(&self, block: BlockId, buf: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get_mut(&block) {
            frame.data.copy_from_slice(buf);
            frame.dirty = true;
            drop(inner);
            self.hits.add_hits(1);
            return Ok(());
        }
        self.hits.add_misses(1);
        let evicted = inner.frames.insert(
            block,
            Frame {
                data: buf.to_vec().into_boxed_slice(),
                dirty: true,
            },
        );
        drop(inner);
        if let Some((id, frame)) = evicted {
            if frame.dirty {
                self.device.write_block(id, &frame.data)?;
            }
        }
        Ok(())
    }

    /// Writes all dirty frames back to the device (frames stay cached).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        // Collect dirty blocks first; LruCache::iter borrows immutably.
        let dirty: Vec<(BlockId, Box<[u8]>)> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, f)| (*id, f.data.clone()))
            .collect();
        for (id, _) in &dirty {
            if let Some(f) = inner.frames.get_mut(id) {
                f.dirty = false;
            }
        }
        drop(inner);
        for (id, data) in dirty {
            self.device.write_block(id, &data)?;
        }
        Ok(())
    }

    /// Drops every cached frame, writing dirty ones back.
    pub fn clear(&self) -> Result<()> {
        let frames = self.inner.lock().frames.drain();
        for (id, frame) in frames {
            if frame.dirty {
                self.device.write_block(id, &frame.data)?;
            }
        }
        Ok(())
    }

    /// `(hits, misses)` of the frame cache. Lock-free: reads the shared
    /// [`HitCounters`] without touching the frame lock.
    pub fn hit_stats(&self) -> (u64, u64) {
        self.hits.snapshot()
    }

    /// Number of frames currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn setup(cap: usize, blocks: u64) -> (Arc<MemDevice>, BufferPool) {
        let dev = Arc::new(MemDevice::new(64));
        dev.allocate(blocks);
        let pool = BufferPool::new(Arc::clone(&dev) as Arc<dyn BlockDevice>, cap);
        (dev, pool)
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let (dev, pool) = setup(4, 2);
        let mut buf = vec![0u8; 64];
        pool.read(0, &mut buf).unwrap();
        pool.read(0, &mut buf).unwrap();
        pool.read(0, &mut buf).unwrap();
        assert_eq!(dev.io_stats().reads, 1, "only the first read hits disk");
        assert_eq!(pool.hit_stats(), (2, 1));
    }

    #[test]
    fn write_back_defers_device_writes() {
        let (dev, pool) = setup(4, 2);
        let buf = vec![7u8; 64];
        pool.write(1, &buf).unwrap();
        assert_eq!(
            dev.io_stats().writes,
            0,
            "write-back: nothing hits disk yet"
        );
        pool.flush().unwrap();
        assert_eq!(dev.io_stats().writes, 1);
        // Flushing twice does not rewrite clean frames.
        pool.flush().unwrap();
        assert_eq!(dev.io_stats().writes, 1);
        let mut out = vec![0u8; 64];
        dev.read_block(1, &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn eviction_writes_dirty_frames() {
        let (dev, pool) = setup(2, 4);
        let buf = vec![9u8; 64];
        pool.write(0, &buf).unwrap();
        let mut tmp = vec![0u8; 64];
        pool.read(1, &mut tmp).unwrap();
        pool.read(2, &mut tmp).unwrap(); // evicts block 0 (dirty)
        assert_eq!(dev.io_stats().writes, 1);
        let mut out = vec![0u8; 64];
        dev.read_block(0, &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn read_after_cached_write_sees_new_data() {
        let (_dev, pool) = setup(4, 2);
        let buf = vec![5u8; 64];
        pool.write(0, &buf).unwrap();
        let mut out = vec![0u8; 64];
        pool.read(0, &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn clear_flushes_and_empties() {
        let (dev, pool) = setup(4, 2);
        pool.write(0, &[1u8; 64]).unwrap();
        pool.write(1, &[2u8; 64]).unwrap();
        pool.clear().unwrap();
        assert_eq!(pool.cached_blocks(), 0);
        assert_eq!(dev.io_stats().writes, 2);
        let mut out = vec![0u8; 64];
        dev.read_block(1, &mut out).unwrap();
        assert_eq!(out, vec![2u8; 64]);
    }

    #[test]
    fn pool_larger_than_working_set_costs_one_read_per_block() {
        let (dev, pool) = setup(16, 8);
        let mut buf = vec![0u8; 64];
        for round in 0..5 {
            for b in 0..8 {
                pool.read(b, &mut buf).unwrap();
            }
            let _ = round;
        }
        assert_eq!(dev.io_stats().reads, 8, "paper setup: cache all, pay once");
    }
}
