//! Deterministic, seed-driven I/O fault injection.
//!
//! Every file-backed I/O primitive in this crate ([`crate::PositionedFile`]
//! reads/writes/fsyncs/truncates, [`crate::fsync_dir`], the
//! [`crate::MemDevice`] block ops, and the store's mapped reads via
//! [`mapped_read`]) carries a **probe**: one relaxed atomic load when no
//! schedule is installed — the release-mode no-op the bench gate
//! measures — and a cold slow path when one is. A [`FaultSchedule`] is
//! installed process-wide (test-only by convention: [`install`] returns a
//! guard that disarms on drop, and [`exclusive`] serializes hook-using
//! tests), numbers the matching ops `0, 1, 2, …` in execution order, and
//! fires programmed faults at exact indices:
//!
//! * **errno** — the op fails with a chosen OS error (EIO, ENOSPC,
//!   EINTR) without touching the file,
//! * **torn write** — a seed-derived strict prefix of the buffer reaches
//!   the file, then the op fails (a short write followed by the error,
//!   the classic crash/full-disk corruption shape),
//! * **bit flip** — the op "succeeds" but one seed-derived bit is
//!   silently wrong (bit rot / misdirected-write simulation).
//!
//! Determinism is the point: the same `(schedule, workload)` pair always
//! fires at the same op, so a torture sweep can count a trace's total I/O
//! ops with [`FaultSchedule::count_only`] and then replay "fail exactly
//! op K" for every K. The op counter only advances for ops the schedule's
//! realm filter admits (`include_mem`), applied *before* the count, so
//! in-memory device traffic never perturbs a file-op sweep's indices.
//!
//! The schedule can also deny mmap ([`FaultSchedule::deny_mmap`]):
//! [`crate::PositionedFile::map_readonly`] then reports `None`, forcing
//! every consumer through the positioned-read fallback path — that is how
//! the zero-copy corruption battery re-runs bit-identically without a
//! mapping.

use crate::device::{BlockDevice, BlockId, PositionedFile};
use crate::error::EmError;
use crate::stats::IoCounters;
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which kind of I/O primitive an op is (the schedule can filter on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A positioned / block read (including mapped reads probed through
    /// [`mapped_read`]).
    Read,
    /// A positioned / vectored / block write.
    Write,
    /// `fsync` / `fdatasync`, including directory fsyncs.
    Fsync,
    /// `ftruncate` ([`crate::PositionedFile::set_len`]) — separated from
    /// [`OpClass::Write`] so a sticky full-disk (`ENOSPC` on every
    /// write) schedule does not fail shrinking truncates, which succeed
    /// on a full disk in reality and which error-recovery paths (WAL
    /// rollback) rely on.
    Trunc,
}

/// Which backend an op runs against. The realm filter is applied before
/// the op counter advances, so excluded realms are invisible to indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Realm {
    /// Real-file I/O ([`crate::PositionedFile`], [`crate::FileDevice`],
    /// mapped reads, directory fsyncs).
    File,
    /// [`crate::MemDevice`] block ops (excluded by default).
    Mem,
}

/// The OS error an injected failure surfaces as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// `EIO` — the generic hard I/O error; classified fatal upstream.
    Eio,
    /// `ENOSPC` — disk full; classified transient (space can be freed).
    Enospc,
    /// `EINTR` — interrupted syscall; retried at this layer.
    Eintr,
}

impl Errno {
    /// The corresponding [`std::io::Error`] (real OS errno codes, so
    /// `ErrorKind` classification upstream sees exactly what a real
    /// failing syscall would produce).
    pub fn to_io_error(self) -> std::io::Error {
        std::io::Error::from_raw_os_error(match self {
            Errno::Eio => 5,
            Errno::Enospc => 28,
            Errno::Eintr => 4,
        })
    }
}

/// What a firing fault does to its op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail outright with the errno; the file is untouched.
    Errno(Errno),
    /// Write a seed-derived strict prefix of the buffer, then fail with
    /// the errno. On non-write ops this degrades to [`FaultKind::Errno`].
    TornWrite(Errno),
    /// Let the op proceed but silently flip one seed-derived bit of the
    /// payload. On length-less ops (fsync) this degrades to a no-op.
    BitFlip,
}

/// One programmed fault: fire on the first op at-or-after `at_op` that
/// matches `class` (once, or on every such op when `sticky`).
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// The op index (within the schedule's counted realm) to arm at.
    pub at_op: u64,
    /// Restrict to one op class; `None` matches any.
    pub class: Option<OpClass>,
    /// What to do when firing.
    pub kind: FaultKind,
    /// `false`: one-shot (fires exactly once). `true`: fires on every
    /// matching op from `at_op` on — e.g. a full disk that stays full.
    pub sticky: bool,
}

/// A complete injection schedule, installed process-wide via [`install`].
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    /// Seed for the torn-write lengths and bit-flip positions (mixed
    /// with the op index, so reruns are exact replays).
    pub seed: u64,
    /// The programmed faults.
    pub faults: Vec<FaultSpec>,
    /// Count (and allow faulting) [`Realm::Mem`] ops too.
    pub include_mem: bool,
    /// Make [`crate::PositionedFile::map_readonly`] report `None`,
    /// forcing the positioned-read fallback everywhere.
    pub deny_mmap: bool,
}

impl FaultSchedule {
    /// No faults: just count file-realm ops (a sweep's measuring pass).
    pub fn count_only(seed: u64) -> Self {
        FaultSchedule {
            seed,
            faults: Vec::new(),
            include_mem: false,
            deny_mmap: false,
        }
    }

    /// Armed but inert — the bench probe's worst honest case: every op
    /// takes the slow path (counter bump + spec scan) and none fires.
    pub fn never(include_mem: bool) -> Self {
        FaultSchedule {
            seed: 0,
            faults: Vec::new(),
            include_mem,
            deny_mmap: false,
        }
    }

    /// One one-shot fault at op `at_op`.
    pub fn fail_op(seed: u64, at_op: u64, class: Option<OpClass>, kind: FaultKind) -> Self {
        FaultSchedule {
            seed,
            faults: vec![FaultSpec {
                at_op,
                class,
                kind,
                sticky: false,
            }],
            include_mem: false,
            deny_mmap: false,
        }
    }

    /// A sticky fault from op `at_op` on (a disk that stays broken/full
    /// until the schedule is cleared).
    pub fn sticky(seed: u64, at_op: u64, class: Option<OpClass>, kind: FaultKind) -> Self {
        FaultSchedule {
            seed,
            faults: vec![FaultSpec {
                at_op,
                class,
                kind,
                sticky: true,
            }],
            include_mem: false,
            deny_mmap: false,
        }
    }

    /// Builder: deny mmap so every read takes the positioned fallback.
    pub fn with_deny_mmap(mut self) -> Self {
        self.deny_mmap = true;
        self
    }
}

/// The probe's verdict for one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No fault: perform the op normally.
    Proceed,
    /// Fail with this errno without performing the op.
    Fail(Errno),
    /// Write only the first `keep` bytes (strictly fewer than asked),
    /// then fail with the errno.
    Torn { keep: usize, errno: Errno },
    /// Perform the op but flip payload bit `bit` (caller reduces it
    /// modulo the payload size).
    FlipBit { bit: u64 },
}

/// The schedule machinery itself: a spec list plus op/fired counters.
/// One instance backs the process-wide hook ([`install`]); standalone
/// instances back the explicit [`FaultFile`] / [`FaultDevice`] wrappers.
pub struct Injector {
    sched: FaultSchedule,
    /// One latch per spec: one-shot specs set it on fire.
    fired: Vec<AtomicBool>,
    /// Ops counted so far (realm-filtered).
    ops: AtomicU64,
    /// Faults actually fired.
    injected: AtomicU64,
}

impl Injector {
    /// A fresh injector for `sched`.
    pub fn new(sched: FaultSchedule) -> Self {
        Injector {
            fired: (0..sched.faults.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            sched,
        }
    }

    /// Counts the op (realm permitting) and returns its verdict.
    pub fn decide(&self, realm: Realm, class: OpClass, len: usize) -> Decision {
        // Realm filter BEFORE the counter: excluded-realm ops must not
        // consume indices, or mem-device traffic would shift a file
        // sweep.
        if realm == Realm::Mem && !self.sched.include_mem {
            return Decision::Proceed;
        }
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        for (i, spec) in self.sched.faults.iter().enumerate() {
            if let Some(c) = spec.class {
                if c != class {
                    continue;
                }
            }
            if idx < spec.at_op {
                continue;
            }
            if !spec.sticky && self.fired[i].swap(true, Ordering::Relaxed) {
                continue; // one-shot already consumed
            }
            let decision = decide(spec, self.sched.seed, idx, class, len);
            if decision != Decision::Proceed {
                self.injected.fetch_add(1, Ordering::Relaxed);
                crate::obs::metrics().faults_injected.inc();
                pr_obs::events().emit(
                    "fault_injected",
                    format!("op={idx} class={class:?} kind={:?}", spec.kind),
                );
            }
            return decision;
        }
        Decision::Proceed
    }

    /// Ops counted so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults fired so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static DENY_MMAP: AtomicBool = AtomicBool::new(false);

fn active() -> &'static RwLock<Option<Arc<Injector>>> {
    static A: OnceLock<RwLock<Option<Arc<Injector>>>> = OnceLock::new();
    A.get_or_init(|| RwLock::new(None))
}

/// Disarms on drop, so a panicking test cannot leak an armed schedule
/// into the rest of the process.
#[must_use = "the schedule is cleared when the guard drops"]
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Installs `sched` process-wide, replacing any current schedule. Hold
/// [`exclusive`] around install/clear in tests that share a binary.
pub fn install(sched: FaultSchedule) -> FaultGuard {
    let deny = sched.deny_mmap;
    *active().write() = Some(Arc::new(Injector::new(sched)));
    DENY_MMAP.store(deny, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard(())
}

/// Disarms and removes the schedule (also what [`FaultGuard`] does).
pub fn clear() {
    ARMED.store(false, Ordering::SeqCst);
    DENY_MMAP.store(false, Ordering::SeqCst);
    *active().write() = None;
}

/// Ops counted under the current schedule (0 when none).
pub fn op_count() -> u64 {
    active()
        .read()
        .as_ref()
        .map_or(0, |a| a.ops.load(Ordering::Relaxed))
}

/// Faults fired under the current schedule (0 when none).
pub fn injected_count() -> u64 {
    active()
        .read()
        .as_ref()
        .map_or(0, |a| a.injected.load(Ordering::Relaxed))
}

/// True while the installed schedule denies mmap.
#[inline]
pub fn mmap_denied() -> bool {
    DENY_MMAP.load(Ordering::Relaxed)
}

/// True while any schedule is installed (bench introspection).
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Process-wide serialization for tests that install schedules: the
/// hooks are global, so concurrent hook-using tests in one binary must
/// take this first.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

/// The probe every hooked primitive calls: a single relaxed load when
/// disarmed (the release-mode cost), the cold path otherwise.
#[inline]
pub fn on_op(realm: Realm, class: OpClass, len: usize) -> Decision {
    if !ARMED.load(Ordering::Relaxed) {
        return Decision::Proceed;
    }
    on_op_slow(realm, class, len)
}

#[cold]
fn on_op_slow(realm: Realm, class: OpClass, len: usize) -> Decision {
    let guard = active().read();
    match guard.as_ref() {
        Some(a) => a.decide(realm, class, len),
        None => Decision::Proceed,
    }
}

fn decide(spec: &FaultSpec, seed: u64, idx: u64, class: OpClass, len: usize) -> Decision {
    match spec.kind {
        FaultKind::Errno(e) => Decision::Fail(e),
        FaultKind::TornWrite(e) => {
            if class == OpClass::Write && len > 0 {
                Decision::Torn {
                    keep: (mix(seed, idx) % len as u64) as usize,
                    errno: e,
                }
            } else {
                Decision::Fail(e)
            }
        }
        FaultKind::BitFlip => {
            if len > 0 {
                Decision::FlipBit {
                    bit: mix(seed, idx) % (len as u64 * 8),
                }
            } else {
                Decision::Proceed
            }
        }
    }
}

/// splitmix64 finalizer over `(seed, idx)`: cheap, well-mixed, and a
/// pure function of its inputs — the source of torn lengths and flip
/// positions, so replays are exact.
fn mix(seed: u64, idx: u64) -> u64 {
    let mut x = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Probe for reads served straight from a shared mmap (there is no
/// syscall to intercept). Returns the bytes to serve: `bytes` itself
/// normally, a bit-flipped copy staged in `scratch` under a flip fault,
/// or the injected error — exactly what a positioned read would surface.
pub fn mapped_read<'a>(bytes: &'a [u8], scratch: &'a mut Vec<u8>) -> std::io::Result<&'a [u8]> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(bytes);
    }
    match on_op_slow(Realm::File, OpClass::Read, bytes.len()) {
        Decision::Proceed => Ok(bytes),
        Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
        Decision::FlipBit { bit } => {
            scratch.clear();
            scratch.extend_from_slice(bytes);
            scratch[(bit / 8) as usize] ^= 1 << (bit % 8);
            Ok(&scratch[..])
        }
    }
}

/// Flips `bit` (reduced modulo the buffer) in place — shared by the
/// hooked write/read paths implementing [`Decision::FlipBit`].
pub(crate) fn flip_bit(buf: &mut [u8], bit: u64) {
    if buf.is_empty() {
        return;
    }
    let bit = bit % (buf.len() as u64 * 8);
    buf[(bit / 8) as usize] ^= 1 << (bit % 8);
}

/// A [`PositionedFile`] carrying its **own** injector — the explicit,
/// single-file alternative to the process-wide hook (which faults every
/// file in the process). Both run the same schedule machinery, so a
/// spec behaves identically either way; only the op numbering differs
/// (per instance here, global there).
pub struct FaultFile {
    inner: PositionedFile,
    inj: Injector,
}

impl FaultFile {
    /// Wraps `inner` with a private copy of `sched`.
    pub fn new(inner: PositionedFile, sched: FaultSchedule) -> Self {
        FaultFile {
            inner,
            inj: Injector::new(sched),
        }
    }

    /// This file's injector (op / injected counts).
    pub fn injector(&self) -> &Injector {
        &self.inj
    }

    /// The wrapped file.
    pub fn inner(&self) -> &PositionedFile {
        &self.inner
    }

    /// Faultable positioned read; see
    /// [`PositionedFile::read_exact_or_zero_at`].
    pub fn read_exact_or_zero_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Read, buf.len()) {
            Decision::Proceed => self.inner.read_exact_or_zero_at(buf, offset),
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
            Decision::FlipBit { bit } => {
                self.inner.read_exact_or_zero_at(buf, offset)?;
                flip_bit(buf, bit);
                Ok(())
            }
        }
    }

    /// Faultable positioned write; see [`PositionedFile::write_all_at`].
    pub fn write_all_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Write, buf.len()) {
            Decision::Proceed => self.inner.write_all_at(buf, offset),
            Decision::Fail(e) => Err(e.to_io_error()),
            Decision::Torn { keep, errno } => {
                let _ = self.inner.write_all_at(&buf[..keep], offset);
                Err(errno.to_io_error())
            }
            Decision::FlipBit { bit } => {
                let mut copy = buf.to_vec();
                flip_bit(&mut copy, bit);
                self.inner.write_all_at(&copy, offset)
            }
        }
    }

    /// Faultable fsync; see [`PositionedFile::sync_data`].
    pub fn sync_data(&self) -> std::io::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Fsync, 0) {
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
            _ => self.inner.sync_data(),
        }
    }

    /// Faultable full fsync; see [`PositionedFile::sync_all`].
    pub fn sync_all(&self) -> std::io::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Fsync, 0) {
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
            _ => self.inner.sync_all(),
        }
    }

    /// Faultable truncate; see [`PositionedFile::set_len`].
    pub fn set_len(&self, len: u64) -> std::io::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Trunc, 0) {
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
            _ => self.inner.set_len(len),
        }
    }

    /// Current file length (not an I/O op — never faulted).
    pub fn len(&self) -> std::io::Result<u64> {
        self.inner.len()
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        self.inner.is_empty()
    }
}

/// A [`BlockDevice`] wrapper carrying its own injector: every block op
/// consults the instance schedule before delegating. Works over any
/// backend (the realm is always [`Realm::File`] from the schedule's
/// point of view — the wrapper *is* the explicitly faulted device).
pub struct FaultDevice<D: BlockDevice> {
    inner: D,
    inj: Injector,
}

impl<D: BlockDevice> FaultDevice<D> {
    /// Wraps `inner` with a private copy of `sched`.
    pub fn new(inner: D, sched: FaultSchedule) -> Self {
        FaultDevice {
            inner,
            inj: Injector::new(sched),
        }
    }

    /// This device's injector (op / injected counts).
    pub fn injector(&self) -> &Injector {
        &self.inj
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for FaultDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn allocate(&self, n: u64) -> BlockId {
        self.inner.allocate(n)
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> crate::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Read, buf.len()) {
            Decision::Proceed => self.inner.read_block(block, buf),
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => {
                Err(EmError::Io(e.to_io_error()))
            }
            Decision::FlipBit { bit } => {
                self.inner.read_block(block, buf)?;
                flip_bit(buf, bit);
                Ok(())
            }
        }
    }

    fn with_block(
        &self,
        block: BlockId,
        scratch: &mut Vec<u8>,
        f: &mut dyn FnMut(&[u8]),
    ) -> crate::Result<()> {
        match self
            .inj
            .decide(Realm::File, OpClass::Read, self.inner.block_size())
        {
            Decision::Proceed => self.inner.with_block(block, scratch, f),
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => {
                Err(EmError::Io(e.to_io_error()))
            }
            Decision::FlipBit { bit } => {
                scratch.resize(self.inner.block_size(), 0);
                self.inner.read_block(block, scratch)?;
                flip_bit(scratch, bit);
                f(scratch);
                Ok(())
            }
        }
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> crate::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Write, buf.len()) {
            Decision::Proceed => self.inner.write_block(block, buf),
            Decision::Fail(e) => Err(EmError::Io(e.to_io_error())),
            Decision::Torn { keep, errno } => {
                // Land a strict prefix over the old contents, then fail.
                let mut old = vec![0u8; self.inner.block_size()];
                let _ = self.inner.read_block(block, &mut old);
                old[..keep].copy_from_slice(&buf[..keep]);
                self.inner.write_block(block, &old)?;
                Err(EmError::Io(errno.to_io_error()))
            }
            Decision::FlipBit { bit } => {
                let mut copy = buf.to_vec();
                flip_bit(&mut copy, bit);
                self.inner.write_block(block, &copy)
            }
        }
    }

    fn counters(&self) -> &Arc<IoCounters> {
        self.inner.counters()
    }

    fn discard(&self, blocks: &[BlockId]) {
        self.inner.discard(blocks)
    }

    fn sync(&self) -> crate::Result<()> {
        match self.inj.decide(Realm::File, OpClass::Fsync, 0) {
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => {
                Err(EmError::Io(e.to_io_error()))
            }
            _ => self.inner.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_probe_proceeds_and_counts_nothing() {
        let _x = exclusive();
        clear();
        assert_eq!(on_op(Realm::File, OpClass::Read, 64), Decision::Proceed);
        assert_eq!(op_count(), 0);
        assert!(!is_armed());
    }

    #[test]
    fn count_only_counts_file_ops_and_filters_mem() {
        let _x = exclusive();
        let _g = install(FaultSchedule::count_only(1));
        for _ in 0..5 {
            assert_eq!(on_op(Realm::File, OpClass::Write, 8), Decision::Proceed);
        }
        // Mem ops are invisible: no count, no index consumed.
        for _ in 0..7 {
            assert_eq!(on_op(Realm::Mem, OpClass::Read, 8), Decision::Proceed);
        }
        assert_eq!(op_count(), 5);
        assert_eq!(injected_count(), 0);
    }

    #[test]
    fn one_shot_fires_exactly_once_at_its_index() {
        let _x = exclusive();
        let _g = install(FaultSchedule::fail_op(
            7,
            2,
            None,
            FaultKind::Errno(Errno::Eio),
        ));
        assert_eq!(on_op(Realm::File, OpClass::Read, 8), Decision::Proceed);
        assert_eq!(on_op(Realm::File, OpClass::Write, 8), Decision::Proceed);
        assert_eq!(
            on_op(Realm::File, OpClass::Fsync, 0),
            Decision::Fail(Errno::Eio)
        );
        assert_eq!(on_op(Realm::File, OpClass::Read, 8), Decision::Proceed);
        assert_eq!(injected_count(), 1);
    }

    #[test]
    fn class_filter_defers_to_first_matching_op() {
        let _x = exclusive();
        let _g = install(FaultSchedule::fail_op(
            7,
            0,
            Some(OpClass::Fsync),
            FaultKind::Errno(Errno::Eintr),
        ));
        assert_eq!(on_op(Realm::File, OpClass::Write, 8), Decision::Proceed);
        assert_eq!(
            on_op(Realm::File, OpClass::Fsync, 0),
            Decision::Fail(Errno::Eintr)
        );
        assert_eq!(on_op(Realm::File, OpClass::Fsync, 0), Decision::Proceed);
    }

    #[test]
    fn sticky_fires_on_every_matching_op_until_cleared() {
        let _x = exclusive();
        let g = install(FaultSchedule::sticky(
            7,
            1,
            Some(OpClass::Write),
            FaultKind::Errno(Errno::Enospc),
        ));
        assert_eq!(on_op(Realm::File, OpClass::Write, 8), Decision::Proceed);
        for _ in 0..3 {
            assert_eq!(
                on_op(Realm::File, OpClass::Write, 8),
                Decision::Fail(Errno::Enospc)
            );
            // A shrinking truncate (rollback) is NOT a Write.
            assert_eq!(on_op(Realm::File, OpClass::Trunc, 0), Decision::Proceed);
        }
        drop(g); // space freed
        assert_eq!(on_op(Realm::File, OpClass::Write, 8), Decision::Proceed);
    }

    #[test]
    fn torn_write_keeps_a_deterministic_strict_prefix() {
        let _x = exclusive();
        let keep1 = {
            let _g = install(FaultSchedule::fail_op(
                42,
                0,
                None,
                FaultKind::TornWrite(Errno::Eio),
            ));
            match on_op(Realm::File, OpClass::Write, 100) {
                Decision::Torn { keep, errno } => {
                    assert!(keep < 100);
                    assert_eq!(errno, Errno::Eio);
                    keep
                }
                d => panic!("expected torn, got {d:?}"),
            }
        };
        // Same seed, same index → same torn length.
        let _g = install(FaultSchedule::fail_op(
            42,
            0,
            None,
            FaultKind::TornWrite(Errno::Eio),
        ));
        assert_eq!(
            on_op(Realm::File, OpClass::Write, 100),
            Decision::Torn {
                keep: keep1,
                errno: Errno::Eio
            }
        );
        // On a read it degrades to a plain failure.
        let _g = install(FaultSchedule::fail_op(
            42,
            0,
            None,
            FaultKind::TornWrite(Errno::Enospc),
        ));
        assert_eq!(
            on_op(Realm::File, OpClass::Read, 100),
            Decision::Fail(Errno::Enospc)
        );
    }

    #[test]
    fn bit_flip_is_deterministic_and_in_range() {
        let _x = exclusive();
        let bit = {
            let _g = install(FaultSchedule::fail_op(9, 0, None, FaultKind::BitFlip));
            match on_op(Realm::File, OpClass::Read, 32) {
                Decision::FlipBit { bit } => {
                    assert!(bit < 32 * 8);
                    bit
                }
                d => panic!("expected flip, got {d:?}"),
            }
        };
        let _g = install(FaultSchedule::fail_op(9, 0, None, FaultKind::BitFlip));
        assert_eq!(
            on_op(Realm::File, OpClass::Read, 32),
            Decision::FlipBit { bit }
        );
    }

    #[test]
    fn errnos_map_to_the_expected_error_kinds() {
        assert_eq!(
            Errno::Eintr.to_io_error().kind(),
            std::io::ErrorKind::Interrupted
        );
        assert_eq!(
            Errno::Enospc.to_io_error().kind(),
            std::io::ErrorKind::StorageFull
        );
        assert_eq!(Errno::Eio.to_io_error().raw_os_error(), Some(5));
    }

    #[test]
    fn mapped_read_serves_flipped_copy_or_error() {
        let _x = exclusive();
        let bytes = [0u8; 16];
        let mut scratch = Vec::new();
        {
            let _g = install(FaultSchedule::fail_op(3, 0, None, FaultKind::BitFlip));
            let served = mapped_read(&bytes, &mut scratch).unwrap();
            assert_eq!(served.len(), 16);
            let diff: u32 = served
                .iter()
                .zip(bytes.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(diff, 1, "exactly one bit differs");
        }
        let _g = install(FaultSchedule::fail_op(
            3,
            0,
            None,
            FaultKind::Errno(Errno::Eio),
        ));
        let err = mapped_read(&bytes, &mut scratch).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
    }

    #[test]
    fn fault_device_fires_its_own_schedule_independently() {
        let _x = exclusive();
        clear(); // global hook disarmed: only the instance schedule acts
        let dev = FaultDevice::new(
            crate::MemDevice::new(64),
            FaultSchedule::fail_op(5, 1, None, FaultKind::TornWrite(Errno::Enospc)),
        );
        dev.allocate(2);
        let block = vec![0xAA; 64];
        dev.write_block(0, &block).unwrap(); // op 0: clean
                                             // Op 1: torn — a strict prefix lands, then ENOSPC.
        let err = dev.write_block(1, &block).unwrap_err();
        assert!(matches!(err, EmError::Io(ref e) if e.raw_os_error() == Some(28)));
        let mut out = vec![0u8; 64];
        dev.read_block(1, &mut out).unwrap();
        let landed = out.iter().filter(|&&b| b == 0xAA).count();
        assert!(landed < 64, "torn write must be a strict prefix");
        assert!(out[landed..].iter().all(|&b| b == 0));
        assert_eq!(dev.injector().injected_count(), 1);
    }

    #[test]
    fn fault_file_fails_the_programmed_fsync() {
        let _x = exclusive();
        clear();
        let dir = std::env::temp_dir().join(format!("pr-em-faultfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ff.bin");
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        let ff = FaultFile::new(
            PositionedFile::new(file),
            FaultSchedule::fail_op(0, 1, Some(OpClass::Fsync), FaultKind::Errno(Errno::Eio)),
        );
        ff.write_all_at(b"hello", 0).unwrap(); // op 0 (Write — not matched)
        let err = ff.sync_data().unwrap_err(); // op 1, Fsync → EIO
        assert_eq!(err.raw_os_error(), Some(5));
        ff.sync_data().unwrap(); // one-shot consumed
        let mut buf = [0u8; 5];
        ff.read_exact_or_zero_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"hello");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deny_mmap_flag_follows_the_schedule() {
        let _x = exclusive();
        assert!(!mmap_denied());
        {
            let _g = install(FaultSchedule::count_only(0).with_deny_mmap());
            assert!(mmap_denied());
        }
        assert!(!mmap_denied());
    }
}
