//! pr-em's catalog of process-wide metrics.
//!
//! Registered once in the global `pr-obs` registry on first use; every
//! device shares these running totals while per-device [`crate::IoCounters`]
//! remain the exact, resettable per-instance view (experiments snapshot
//! those; operators read the registry).

use std::sync::OnceLock;

/// Handles to pr-em's registry metrics.
pub struct Metrics {
    /// `em_device_reads_total` — block reads across all devices.
    pub device_reads: pr_obs::Counter,
    /// `em_device_writes_total` — block writes across all devices.
    pub device_writes: pr_obs::Counter,
    /// `em_device_fsyncs_total` — fsyncs through [`crate::PositionedFile`]
    /// (store commits, WAL groups, compaction renames all funnel here).
    pub device_fsyncs: pr_obs::Counter,
    /// `em_io_errors_total` — I/O errors surfaced to callers of the
    /// hooked file primitives (after any retries), injected or real.
    pub io_errors: pr_obs::Counter,
    /// `em_io_retries_total` — transparently retried `EINTR` attempts.
    pub io_retries: pr_obs::Counter,
    /// `em_faults_injected_total` — faults fired by [`crate::fault`].
    pub faults_injected: pr_obs::Counter,
}

/// The lazily registered catalog.
pub fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = pr_obs::global();
        Metrics {
            device_reads: r.counter(
                "em_device_reads_total",
                "block reads across all block devices",
            ),
            device_writes: r.counter(
                "em_device_writes_total",
                "block writes across all block devices",
            ),
            device_fsyncs: r.counter(
                "em_device_fsyncs_total",
                "fsync calls through PositionedFile (store commits, WAL groups)",
            ),
            io_errors: r.counter(
                "em_io_errors_total",
                "I/O errors surfaced by the hooked file primitives (after retries)",
            ),
            io_retries: r.counter(
                "em_io_retries_total",
                "transparently retried EINTR attempts",
            ),
            faults_injected: r.counter(
                "em_faults_injected_total",
                "faults fired by the pr_em::fault injection layer",
            ),
        }
    })
}
