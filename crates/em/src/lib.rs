//! External-memory substrate: a miniature TPIE.
//!
//! The PR-tree paper implements and *measures* everything in the
//! external-memory (I/O) model of Aggarwal–Vitter: data lives on disk in
//! blocks of `B` records, main memory holds `M` records, and the unit of
//! cost is one block transfer. Its experimental numbers are 4KB-block read
//! and write counts collected through the TPIE library. This crate plays
//! TPIE's role:
//!
//! * [`device`] — block devices with exact I/O accounting: an in-memory
//!   device for experiments (fast, deterministic) and a file-backed device
//!   proving the same code runs against a real disk,
//! * [`stats`] — shared read/write counters and snapshots,
//! * [`pool`] — an LRU buffer pool with write-back, used for the paper's
//!   "cache all internal nodes" query setup and for cache ablations,
//! * [`stream`] — sequential typed streams of fixed-size records, the
//!   workhorse of every bulk-loading algorithm,
//! * [`sort`] — external multiway merge sort under a configurable memory
//!   budget `M`, giving the `O(N/B · log_{M/B} N/B)` sorting bound every
//!   construction algorithm in the paper leans on,
//! * [`lru`] — the intrusive LRU used by the pool (public: the R-tree node
//!   cache reuses it).
//!
//! All counters are cheap atomics; devices are `Sync` so parallel builds
//! can share them.

pub mod device;
pub mod error;
pub mod fault;
pub mod lru;
pub mod obs;
pub mod pool;
pub mod sort;
pub mod stats;
pub mod stream;

pub use device::{
    fsync_dir, BlockDevice, BlockId, FileDevice, MemDevice, Mmap, PositionedFile,
    DEFAULT_BLOCK_SIZE,
};
pub use error::{io_error_is_transient, EmError};
pub use pool::BufferPool;
pub use sort::{external_sort, external_sort_by, SortConfig};
pub use stats::{HitCounters, IoCounters, IoStats};
pub use stream::{Record, Stream, StreamReader, StreamWriter};

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, EmError>;
