//! Sequential typed streams of fixed-size records.
//!
//! TPIE's central abstraction is the *stream*: a sequence of records read
//! and written strictly sequentially, one block at a time. Every
//! bulk-loading algorithm in the paper is expressed over streams (sorted
//! lists, distribution passes, run formation). A [`Stream`] here is a list
//! of block ids on some device plus a record count; readers and writers
//! buffer exactly one block, so their memory footprint is one block each —
//! which is what the external sort's memory budget assumes.

use crate::device::{BlockDevice, BlockId};
use crate::error::EmError;
use crate::Result;

/// A fixed-size binary-encodable record.
///
/// Records must encode to exactly [`Record::SIZE`] bytes. The substrate
/// never interprets record bytes; ordering is supplied by callers.
pub trait Record: Clone {
    /// Encoded size in bytes. Must be positive and at most the block size
    /// of any device the record is stored on.
    const SIZE: usize;

    /// Serializes into `buf` (`buf.len() == Self::SIZE`).
    fn encode(&self, buf: &mut [u8]);

    /// Deserializes from `buf` (`buf.len() == Self::SIZE`).
    fn decode(buf: &[u8]) -> Self;
}

macro_rules! int_record {
    ($($t:ty),*) => {$(
        impl Record for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn encode(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("record size"))
            }
        }
    )*};
}
int_record!(u32, u64, i32, i64, u128);

/// A sequence of records stored across whole blocks of a device.
///
/// The stream does not own the device; pass the device back in to read it.
#[derive(Debug, Clone, Default)]
pub struct Stream {
    pages: Vec<BlockId>,
    len: u64,
}

impl Stream {
    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks backing the stream.
    pub fn num_blocks(&self) -> usize {
        self.pages.len()
    }

    /// Records per block for record type `R` on a device with `block_size`.
    pub fn records_per_block<R: Record>(block_size: usize) -> usize {
        assert!(
            R::SIZE > 0 && R::SIZE <= block_size,
            "record/block size mismatch"
        );
        block_size / R::SIZE
    }

    /// Writes all `items` to a new stream on `dev`.
    pub fn from_iter<R: Record>(
        dev: &dyn BlockDevice,
        items: impl IntoIterator<Item = R>,
    ) -> Result<Stream> {
        let mut w = StreamWriter::new(dev);
        for item in items {
            w.push(&item)?;
        }
        w.finish()
    }

    /// Reads the whole stream into a `Vec` (convenience for tests and for
    /// the in-memory base case of recursive algorithms).
    pub fn read_all<R: Record>(&self, dev: &dyn BlockDevice) -> Result<Vec<R>> {
        let mut reader = StreamReader::new(dev, self);
        let mut out = Vec::with_capacity(self.len as usize);
        while let Some(r) = reader.next_record()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Releases the stream's blocks back to the device (temporary-file
    /// deletion). The stream must not be read afterwards.
    pub fn discard(self, dev: &dyn BlockDevice) {
        dev.discard(&self.pages);
    }
}

/// Appends records to a fresh stream, one buffered block at a time.
pub struct StreamWriter<'d, R: Record> {
    dev: &'d dyn BlockDevice,
    buf: Vec<u8>,
    in_block: usize,
    per_block: usize,
    pages: Vec<BlockId>,
    len: u64,
    _marker: std::marker::PhantomData<R>,
}

impl<'d, R: Record> StreamWriter<'d, R> {
    /// Starts a new stream on `dev`.
    pub fn new(dev: &'d dyn BlockDevice) -> Self {
        let bs = dev.block_size();
        StreamWriter {
            dev,
            buf: vec![0u8; bs],
            in_block: 0,
            per_block: Stream::records_per_block::<R>(bs),
            pages: Vec::new(),
            len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Appends one record.
    pub fn push(&mut self, r: &R) -> Result<()> {
        if self.in_block == self.per_block {
            self.spill()?;
        }
        let off = self.in_block * R::SIZE;
        r.encode(&mut self.buf[off..off + R::SIZE]);
        self.in_block += 1;
        self.len += 1;
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        let page = self.dev.allocate(1);
        self.dev.write_block(page, &self.buf)?;
        self.pages.push(page);
        self.in_block = 0;
        Ok(())
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no records were pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flushes the trailing partial block and returns the finished stream.
    pub fn finish(mut self) -> Result<Stream> {
        if self.in_block > 0 {
            // Zero the tail so partial blocks are deterministic.
            let used = self.in_block * R::SIZE;
            for b in &mut self.buf[used..] {
                *b = 0;
            }
            self.spill()?;
        }
        Ok(Stream {
            pages: self.pages,
            len: self.len,
        })
    }
}

/// Reads a stream sequentially, buffering one block.
pub struct StreamReader<'d, R: Record> {
    dev: &'d dyn BlockDevice,
    pages: Vec<BlockId>,
    remaining: u64,
    buf: Vec<u8>,
    in_block: usize,
    per_block: usize,
    next_page: usize,
    _marker: std::marker::PhantomData<R>,
}

impl<'d, R: Record> StreamReader<'d, R> {
    /// Opens `stream` for sequential reading on `dev`.
    pub fn new(dev: &'d dyn BlockDevice, stream: &Stream) -> Self {
        let bs = dev.block_size();
        StreamReader {
            dev,
            pages: stream.pages.clone(),
            remaining: stream.len,
            buf: vec![0u8; bs],
            in_block: 0,
            per_block: Stream::records_per_block::<R>(bs),
            next_page: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Records not yet returned.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Returns the next record, or `None` at end of stream.
    pub fn next_record(&mut self) -> Result<Option<R>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.in_block == 0 {
            let page = *self
                .pages
                .get(self.next_page)
                .ok_or_else(|| EmError::Corrupt("stream shorter than its length".into()))?;
            self.dev.read_block(page, &mut self.buf)?;
            self.next_page += 1;
        }
        let off = self.in_block * R::SIZE;
        let r = R::decode(&self.buf[off..off + R::SIZE]);
        self.in_block = (self.in_block + 1) % self.per_block;
        self.remaining -= 1;
        Ok(Some(r))
    }
}

impl<'d, R: Record> Iterator for StreamReader<'d, R> {
    type Item = R;

    /// Iterator convenience that panics on device errors; algorithms that
    /// must surface errors use [`StreamReader::next_record`].
    fn next(&mut self) -> Option<R> {
        self.next_record().expect("stream read failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn roundtrip_exact_block_multiple() {
        let dev = MemDevice::new(32); // 8 u32 per block
        let items: Vec<u32> = (0..16).collect();
        let s = Stream::from_iter(&dev, items.iter().copied()).unwrap();
        assert_eq!(s.len(), 16);
        assert_eq!(s.num_blocks(), 2);
        assert_eq!(s.read_all::<u32>(&dev).unwrap(), items);
    }

    #[test]
    fn roundtrip_partial_tail_block() {
        let dev = MemDevice::new(32);
        let items: Vec<u32> = (0..13).collect();
        let s = Stream::from_iter(&dev, items.iter().copied()).unwrap();
        assert_eq!(s.num_blocks(), 2);
        assert_eq!(s.read_all::<u32>(&dev).unwrap(), items);
    }

    #[test]
    fn empty_stream() {
        let dev = MemDevice::new(32);
        let s = Stream::from_iter::<u32>(&dev, []).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.num_blocks(), 0);
        assert!(s.read_all::<u32>(&dev).unwrap().is_empty());
        assert_eq!(dev.io_stats().total(), 0);
    }

    #[test]
    fn io_counts_are_block_granular() {
        let dev = MemDevice::new(32); // 8 u32/block
        let s = Stream::from_iter(&dev, 0..24u32).unwrap();
        assert_eq!(dev.io_stats().writes, 3);
        let _ = s.read_all::<u32>(&dev).unwrap();
        assert_eq!(dev.io_stats().reads, 3);
    }

    #[test]
    fn interleaved_streams_on_one_device() {
        let dev = MemDevice::new(32);
        let mut w1 = StreamWriter::<u32>::new(&dev);
        let mut w2 = StreamWriter::<u32>::new(&dev);
        for i in 0..20 {
            w1.push(&i).unwrap();
            w2.push(&(100 + i)).unwrap();
        }
        let s1 = w1.finish().unwrap();
        let s2 = w2.finish().unwrap();
        assert_eq!(
            s1.read_all::<u32>(&dev).unwrap(),
            (0..20).collect::<Vec<_>>()
        );
        assert_eq!(
            s2.read_all::<u32>(&dev).unwrap(),
            (100..120).collect::<Vec<_>>()
        );
    }

    #[test]
    fn u128_records() {
        let dev = MemDevice::new(64);
        let items: Vec<u128> = vec![0, 1, u128::MAX, 42 << 90];
        let s = Stream::from_iter(&dev, items.iter().copied()).unwrap();
        assert_eq!(s.read_all::<u128>(&dev).unwrap(), items);
    }

    #[test]
    fn reader_is_an_iterator() {
        let dev = MemDevice::new(32);
        let s = Stream::from_iter(&dev, 0..10u32).unwrap();
        let sum: u32 = StreamReader::<u32>::new(&dev, &s).sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn remaining_tracks_progress() {
        let dev = MemDevice::new(32);
        let s = Stream::from_iter(&dev, 0..5u32).unwrap();
        let mut r = StreamReader::<u32>::new(&dev, &s);
        assert_eq!(r.remaining(), 5);
        r.next_record().unwrap();
        assert_eq!(r.remaining(), 4);
    }
}
