//! I/O accounting.
//!
//! Every block transfer through a [`crate::BlockDevice`] bumps a shared
//! atomic counter. Experiments snapshot the counters before and after an
//! operation and report the difference — exactly how the paper reports
//! "number of 4KB blocks read or written" for bulk loading and "number of
//! leaves visited" for queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters owned by a device.
#[derive(Debug, Default)]
pub struct IoCounters {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoCounters {
    /// Fresh zeroed counters behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(IoCounters::default())
    }

    /// Records `n` block reads (here and in the process-wide registry).
    #[inline]
    pub fn add_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
        crate::obs::metrics().device_reads.add(n);
    }

    /// Records `n` block writes (here and in the process-wide registry).
    #[inline]
    pub fn add_writes(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
        crate::obs::metrics().device_writes.add(n);
    }

    /// Current totals.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero (between experiments).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

/// Shared, thread-safe hit/miss counters for any cache layer.
///
/// The node cache in `pr-tree` and the [`crate::BufferPool`] both report
/// `(hits, misses)` through this type. Counters are relaxed atomics:
/// totals are exact whatever the interleaving (every lookup increments
/// exactly one counter), only cross-counter ordering is unspecified —
/// the same contract as [`IoCounters`].
#[derive(Debug, Default)]
pub struct HitCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HitCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        HitCounters::default()
    }

    /// Records `n` cache hits.
    #[inline]
    pub fn add_hits(&self, n: u64) {
        if n > 0 {
            self.hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` cache misses.
    #[inline]
    pub fn add_misses(&self, n: u64) {
        if n > 0 {
            self.misses.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current `(hits, misses)` totals.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
}

impl IoStats {
    /// Total transfers (the paper's headline construction metric).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counter delta since `earlier` (saturating, so a reset in between
    /// yields zeros rather than nonsense).
    pub fn since(&self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} reads + {} writes = {} I/Os",
            self.reads,
            self.writes,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = IoCounters::new();
        c.add_reads(3);
        c.add_writes(2);
        c.add_reads(1);
        let s = c.snapshot();
        assert_eq!(
            s,
            IoStats {
                reads: 4,
                writes: 2
            }
        );
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn since_computes_delta() {
        let c = IoCounters::new();
        c.add_reads(10);
        let before = c.snapshot();
        c.add_reads(5);
        c.add_writes(7);
        let delta = c.snapshot().since(before);
        assert_eq!(
            delta,
            IoStats {
                reads: 5,
                writes: 7
            }
        );
    }

    #[test]
    fn reset_zeroes() {
        let c = IoCounters::new();
        c.add_writes(9);
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }

    #[test]
    fn hit_counters_accumulate_and_reset() {
        let h = HitCounters::new();
        h.add_hits(3);
        h.add_misses(1);
        h.add_hits(0); // no-op, must not touch the atomic
        assert_eq!(h.snapshot(), (3, 1));
        h.reset();
        assert_eq!(h.snapshot(), (0, 0));
    }

    #[test]
    fn hit_counters_are_exact_across_threads() {
        let h = HitCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        h.add_hits(1);
                        h.add_misses(2);
                    }
                });
            }
        });
        assert_eq!(h.snapshot(), (4000, 8000));
    }

    #[test]
    fn since_saturates_after_reset() {
        let c = IoCounters::new();
        c.add_reads(10);
        let before = c.snapshot();
        c.reset();
        c.add_reads(1);
        let delta = c.snapshot().since(before);
        assert_eq!(delta.reads, 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = IoCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add_reads(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().reads, 4000);
    }

    #[test]
    fn display_format() {
        let s = IoStats {
            reads: 2,
            writes: 3,
        };
        assert_eq!(s.to_string(), "2 reads + 3 writes = 5 I/Os");
        assert_eq!(
            (s + IoStats {
                reads: 1,
                writes: 1
            })
            .total(),
            7
        );
    }
}
