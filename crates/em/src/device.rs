//! Block devices with I/O accounting.
//!
//! A device is a flat array of fixed-size blocks. Reads and writes are
//! whole-block and each one bumps the shared [`IoCounters`]. The in-memory
//! device is what experiments use (the paper's metric is the *count* of
//! transfers, not their latency); the file-backed device demonstrates that
//! the same algorithms run unchanged against a real file.

use crate::error::EmError;
use crate::stats::{IoCounters, IoStats};
use crate::Result;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Identifier of a block on a device (its index).
pub type BlockId = u64;

/// The paper's disk block size: 4KB (§3.1).
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// A device of fixed-size blocks with exact transfer accounting.
///
/// All methods take `&self`; implementations synchronize internally so
/// devices can be shared across threads (parallel bulk loading).
pub trait BlockDevice: Send + Sync {
    /// Size of one block in bytes.
    fn block_size(&self) -> usize;

    /// Number of allocated blocks.
    fn num_blocks(&self) -> u64;

    /// Appends `n` zeroed blocks, returning the id of the first new block.
    /// Allocation itself is free (it models reserving address space, not a
    /// transfer).
    fn allocate(&self, n: u64) -> BlockId;

    /// Reads block `block` into `buf` (`buf.len()` must equal
    /// [`BlockDevice::block_size`]). Counts one read.
    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` to block `block`. Counts one write.
    fn write_block(&self, block: BlockId, buf: &[u8]) -> Result<()>;

    /// The shared counters for this device.
    fn counters(&self) -> &Arc<IoCounters>;

    /// Convenience: a snapshot of the counters.
    fn io_stats(&self) -> IoStats {
        self.counters().snapshot()
    }

    /// Releases the storage of `blocks` (temporary-file deletion in the
    /// TPIE model). Freed ids are *not* reused; reading a discarded block
    /// is an error. Discarding is free of I/O cost. The default
    /// implementation is a no-op (file-backed devices may keep the bytes).
    fn discard(&self, blocks: &[BlockId]) {
        let _ = blocks;
    }
}

/// In-memory block device: blocks live in a `Vec`, transfers are memcpys.
///
/// Deterministic and fast; the default substrate for all experiments.
pub struct MemDevice {
    block_size: usize,
    blocks: Mutex<Vec<Option<Box<[u8]>>>>,
    counters: Arc<IoCounters>,
}

impl MemDevice {
    /// Creates an empty device with the given block size.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        MemDevice {
            block_size,
            blocks: Mutex::new(Vec::new()),
            counters: IoCounters::new(),
        }
    }

    /// Creates an empty device with the paper's 4KB blocks.
    pub fn default_size() -> Self {
        MemDevice::new(DEFAULT_BLOCK_SIZE)
    }

    /// Bytes currently held, excluding discarded blocks (for capacity
    /// assertions in tests).
    pub fn resident_bytes(&self) -> usize {
        self.blocks.lock().iter().filter(|b| b.is_some()).count() * self.block_size
    }
}

impl BlockDevice for MemDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.lock().len() as u64
    }

    fn allocate(&self, n: u64) -> BlockId {
        let mut blocks = self.blocks.lock();
        let first = blocks.len() as u64;
        for _ in 0..n {
            blocks.push(Some(vec![0u8; self.block_size].into_boxed_slice()));
        }
        first
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let blocks = self.blocks.lock();
        let slot = blocks.get(block as usize).ok_or(EmError::BlockOutOfRange {
            block,
            len: blocks.len() as u64,
        })?;
        let src = slot
            .as_ref()
            .ok_or_else(|| EmError::Corrupt(format!("read of discarded block {block}")))?;
        buf.copy_from_slice(src);
        drop(blocks);
        self.counters.add_reads(1);
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let mut blocks = self.blocks.lock();
        let len = blocks.len() as u64;
        let slot = blocks
            .get_mut(block as usize)
            .ok_or(EmError::BlockOutOfRange { block, len })?;
        match slot {
            Some(dst) => dst.copy_from_slice(buf),
            None => *slot = Some(buf.to_vec().into_boxed_slice()),
        }
        drop(blocks);
        self.counters.add_writes(1);
        Ok(())
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }

    fn discard(&self, ids: &[BlockId]) {
        let mut blocks = self.blocks.lock();
        for &id in ids {
            if let Some(slot) = blocks.get_mut(id as usize) {
                *slot = None;
            }
        }
    }
}

/// File-backed block device. Blocks are stored contiguously in one file.
pub struct FileDevice {
    block_size: usize,
    file: Mutex<File>,
    num_blocks: Mutex<u64>,
    counters: Arc<IoCounters>,
}

impl FileDevice {
    /// Creates (truncating) a device backed by the file at `path`.
    pub fn create(path: &Path, block_size: usize) -> Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDevice {
            block_size,
            file: Mutex::new(file),
            num_blocks: Mutex::new(0),
            counters: IoCounters::new(),
        })
    }
}

impl BlockDevice for FileDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        *self.num_blocks.lock()
    }

    fn allocate(&self, n: u64) -> BlockId {
        let mut num = self.num_blocks.lock();
        let first = *num;
        *num += n;
        // The file is grown lazily on write; sparse files make allocation
        // cheap, matching the in-memory device's free allocation.
        first
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let len = self.num_blocks();
        if block >= len {
            return Err(EmError::BlockOutOfRange { block, len });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(block * self.block_size as u64))?;
        // A block beyond the materialized end of a sparse file reads as
        // zeros, mirroring MemDevice's zero-initialized allocation.
        let mut read_total = 0;
        while read_total < buf.len() {
            let n = file.read(&mut buf[read_total..])?;
            if n == 0 {
                for b in &mut buf[read_total..] {
                    *b = 0;
                }
                break;
            }
            read_total += n;
        }
        drop(file);
        self.counters.add_reads(1);
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let len = self.num_blocks();
        if block >= len {
            return Err(EmError::BlockOutOfRange { block, len });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(block * self.block_size as u64))?;
        file.write_all(buf)?;
        drop(file);
        self.counters.add_writes(1);
        Ok(())
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn BlockDevice) {
        let bs = dev.block_size();
        let first = dev.allocate(3);
        assert_eq!(dev.num_blocks(), 3);
        let mut buf = vec![0xABu8; bs];
        buf[0] = 1;
        dev.write_block(first + 1, &buf).unwrap();
        let mut out = vec![0u8; bs];
        dev.read_block(first + 1, &mut out).unwrap();
        assert_eq!(out, buf);
        // Unwritten blocks read as zeros.
        dev.read_block(first, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        // Accounting: 1 write, 2 reads.
        let s = dev.io_stats();
        assert_eq!((s.reads, s.writes), (2, 1));
    }

    #[test]
    fn mem_device_roundtrip_and_accounting() {
        roundtrip(&MemDevice::new(512));
    }

    #[test]
    fn file_device_roundtrip_and_accounting() {
        let dir = std::env::temp_dir().join(format!("pr-em-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.bin");
        roundtrip(&FileDevice::create(&path, 512).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_is_an_error() {
        let dev = MemDevice::new(64);
        dev.allocate(1);
        let mut buf = vec![0u8; 64];
        assert!(matches!(
            dev.read_block(5, &mut buf),
            Err(EmError::BlockOutOfRange { block: 5, len: 1 })
        ));
        assert!(matches!(
            dev.write_block(1, &buf),
            Err(EmError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_buffer_size_is_an_error() {
        let dev = MemDevice::new(64);
        dev.allocate(1);
        let mut small = vec![0u8; 32];
        assert!(matches!(
            dev.read_block(0, &mut small),
            Err(EmError::BadBufferSize { got: 32, want: 64 })
        ));
    }

    #[test]
    fn allocation_is_free_of_io() {
        let dev = MemDevice::new(64);
        dev.allocate(100);
        assert_eq!(dev.io_stats().total(), 0);
        assert_eq!(dev.resident_bytes(), 6400);
    }

    #[test]
    fn discard_reclaims_memory_and_poisons_reads() {
        let dev = MemDevice::new(64);
        dev.allocate(4);
        let buf = vec![1u8; 64];
        dev.write_block(0, &buf).unwrap();
        dev.write_block(1, &buf).unwrap();
        dev.discard(&[0, 1]);
        assert_eq!(dev.resident_bytes(), 2 * 64);
        let mut out = vec![0u8; 64];
        assert!(matches!(
            dev.read_block(0, &mut out),
            Err(EmError::Corrupt(_))
        ));
        // Rewriting a discarded block revives it.
        dev.write_block(0, &buf).unwrap();
        dev.read_block(0, &mut out).unwrap();
        assert_eq!(out, buf);
        // Discard is free of I/O cost: 3 writes + 1 read so far.
        let s = dev.io_stats();
        assert_eq!((s.reads, s.writes), (1, 3));
    }

    #[test]
    fn default_block_size_matches_paper() {
        assert_eq!(MemDevice::default_size().block_size(), 4096);
    }
}
