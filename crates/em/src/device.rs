//! Block devices with I/O accounting.
//!
//! A device is a flat array of fixed-size blocks. Reads and writes are
//! whole-block and each one bumps the shared [`IoCounters`]. The in-memory
//! device is what experiments use (the paper's metric is the *count* of
//! transfers, not their latency); the file-backed device demonstrates that
//! the same algorithms run unchanged against a real file.

use crate::error::EmError;
use crate::fault::{self, Decision, OpClass, Realm};
use crate::stats::{IoCounters, IoStats};
use crate::Result;
#[cfg(not(unix))]
use parking_lot::Mutex;
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a block on a device (its index).
pub type BlockId = u64;

/// The paper's disk block size: 4KB (§3.1).
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// How many times a syscall interrupted by a signal (`EINTR`) is
/// transparently retried before the error surfaces. Bounded: a signal
/// storm (or a sticky injected `EINTR`) must eventually fail loudly
/// instead of hanging the caller.
const MAX_EINTR_RETRIES: u32 = 8;

/// Runs `op`, retrying `EINTR` with bounded exponential backoff. Any
/// error that finally surfaces — retries exhausted or a different kind —
/// is counted in `em_io_errors_total` and emitted as an `io_error`
/// event, so operators see every failure callers have to handle.
fn retry_io<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut attempts = 0u32;
    loop {
        match op() {
            Err(e)
                if e.kind() == std::io::ErrorKind::Interrupted && attempts < MAX_EINTR_RETRIES =>
            {
                attempts += 1;
                crate::obs::metrics().io_retries.inc();
                std::thread::sleep(std::time::Duration::from_micros(20u64 << attempts.min(6)));
            }
            Err(e) => {
                crate::obs::metrics().io_errors.inc();
                pr_obs::events().emit("io_error", format!("{e}"));
                return Err(e);
            }
            ok => return ok,
        }
    }
}

/// A device of fixed-size blocks with exact transfer accounting.
///
/// All methods take `&self`; implementations synchronize internally so
/// devices can be shared across threads (parallel bulk loading).
pub trait BlockDevice: Send + Sync {
    /// Size of one block in bytes.
    fn block_size(&self) -> usize;

    /// Number of allocated blocks.
    fn num_blocks(&self) -> u64;

    /// Appends `n` zeroed blocks, returning the id of the first new block.
    /// Allocation itself is free (it models reserving address space, not a
    /// transfer).
    fn allocate(&self, n: u64) -> BlockId;

    /// Reads block `block` into `buf` (`buf.len()` must equal
    /// [`BlockDevice::block_size`]). Counts one read.
    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<()>;

    /// Runs `f` over the block's bytes, skipping the copy when the
    /// backend can expose its storage directly. The default resizes
    /// `scratch` to one block, delegates to
    /// [`BlockDevice::read_block`], and calls `f` on the result;
    /// [`MemDevice`] overrides it to borrow the stored block in place —
    /// `f` runs under its storage *read* lock, which any number of
    /// concurrent readers share, so parallel leaf visits don't
    /// serialize. Either way this counts exactly one read, so I/O
    /// accounting is unchanged.
    ///
    /// This is the query engine's leaf-visit path: one page-sized
    /// `memcpy` per uncached node visit is pure overhead when the
    /// caller immediately transcodes the bytes elsewhere.
    fn with_block(
        &self,
        block: BlockId,
        scratch: &mut Vec<u8>,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<()> {
        scratch.resize(self.block_size(), 0);
        self.read_block(block, scratch)?;
        f(scratch);
        Ok(())
    }

    /// Writes `buf` to block `block`. Counts one write.
    fn write_block(&self, block: BlockId, buf: &[u8]) -> Result<()>;

    /// The shared counters for this device.
    fn counters(&self) -> &Arc<IoCounters>;

    /// Convenience: a snapshot of the counters.
    fn io_stats(&self) -> IoStats {
        self.counters().snapshot()
    }

    /// Releases the storage of `blocks` (temporary-file deletion in the
    /// TPIE model). Freed ids are *not* reused; reading a discarded block
    /// is an error. Discarding is free of I/O cost. The default
    /// implementation is a no-op (file-backed devices may keep the bytes).
    fn discard(&self, blocks: &[BlockId]) {
        let _ = blocks;
    }

    /// Flushes every written block to stable storage (an `fsync` for
    /// file-backed devices). Persistence layers call this before a commit
    /// record becomes reachable. In-memory devices are trivially
    /// "durable", so the default is a free no-op.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// A file addressed by absolute byte offset rather than a shared cursor.
///
/// On unix this is `pread`/`pwrite` via [`std::os::unix::fs::FileExt`]:
/// no seek, no lock, so any number of threads read concurrently without
/// serializing on one file cursor. On other platforms it falls back to a
/// mutex-guarded `seek` + `read`/`write` — the mutex exists only where
/// the platform requires it.
///
/// Public because `pr-store` layers its snapshot reader on the same
/// primitive.
#[derive(Debug)]
pub struct PositionedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl PositionedFile {
    /// Wraps an open file.
    pub fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            PositionedFile { file }
        }
        #[cfg(not(unix))]
        {
            PositionedFile {
                file: Mutex::new(file),
            }
        }
    }

    /// Fills `buf` from byte `offset`, zero-filling anything past the
    /// materialized end of the file (sparse-file semantics: unwritten
    /// regions read as zeros, mirroring zero-initialized allocation).
    /// `EINTR` is retried with bounded backoff.
    pub fn read_exact_or_zero_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        retry_io(
            || match fault::on_op(Realm::File, OpClass::Read, buf.len()) {
                Decision::Proceed => self.read_exact_or_zero_at_impl(buf, offset),
                Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
                Decision::FlipBit { bit } => {
                    self.read_exact_or_zero_at_impl(buf, offset)?;
                    fault::flip_bit(buf, bit);
                    Ok(())
                }
            },
        )
    }

    fn read_exact_or_zero_at_impl(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut done = 0;
            while done < buf.len() {
                let n = self.file.read_at(&mut buf[done..], offset + done as u64)?;
                if n == 0 {
                    buf[done..].fill(0);
                    break;
                }
                done += n;
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))?;
            let mut done = 0;
            while done < buf.len() {
                let n = file.read(&mut buf[done..])?;
                if n == 0 {
                    buf[done..].fill(0);
                    break;
                }
                done += n;
            }
            Ok(())
        }
    }

    /// Writes all of `buf` at byte `offset`. `EINTR` is retried with
    /// bounded backoff.
    pub fn write_all_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        retry_io(
            || match fault::on_op(Realm::File, OpClass::Write, buf.len()) {
                Decision::Proceed => self.write_all_at_impl(buf, offset),
                Decision::Fail(e) => Err(e.to_io_error()),
                Decision::Torn { keep, errno } => {
                    // The short-write-then-fail shape: a strict prefix
                    // reaches the file before the error surfaces.
                    let _ = self.write_all_at_impl(&buf[..keep], offset);
                    Err(errno.to_io_error())
                }
                Decision::FlipBit { bit } => {
                    let mut copy = buf.to_vec();
                    fault::flip_bit(&mut copy, bit);
                    self.write_all_at_impl(&copy, offset)
                }
            },
        )
    }

    fn write_all_at_impl(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(buf)
        }
    }

    /// Writes every buffer in `bufs` back to back, starting at byte
    /// `offset` — the positioned analogue of `write_vectored`. On 64-bit
    /// unix the buffers go down in `pwritev` calls (one kernel crossing
    /// gathers the whole group in the common case); elsewhere this
    /// degrades to one `write_all_at` per buffer. The WAL's group-commit
    /// leader uses it to land a queue of independently encoded batches
    /// in a single syscall ahead of the one shared fsync. The whole
    /// gather counts as **one** op for fault injection (it is one
    /// logical append); a torn fault keeps a prefix of the logical
    /// concatenation.
    pub fn write_all_vectored_at(&self, bufs: &[&[u8]], offset: u64) -> std::io::Result<()> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        retry_io(|| match fault::on_op(Realm::File, OpClass::Write, total) {
            Decision::Proceed => self.write_all_vectored_at_impl(bufs, offset),
            Decision::Fail(e) => Err(e.to_io_error()),
            Decision::Torn { keep, errno } => {
                let mut remaining = keep;
                let mut off = offset;
                for b in bufs {
                    if remaining == 0 {
                        break;
                    }
                    let n = b.len().min(remaining);
                    let _ = self.write_all_at_impl(&b[..n], off);
                    off += n as u64;
                    remaining -= n;
                }
                Err(errno.to_io_error())
            }
            Decision::FlipBit { bit } => {
                let mut flat: Vec<u8> = Vec::with_capacity(total);
                for b in bufs {
                    flat.extend_from_slice(b);
                }
                fault::flip_bit(&mut flat, bit);
                self.write_all_at_impl(&flat, offset)
            }
        })
    }

    fn write_all_vectored_at_impl(&self, bufs: &[&[u8]], offset: u64) -> std::io::Result<()> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            // Stay under IOV_MAX (1024 on every supported unix); larger
            // groups simply take another lap.
            const IOV_CHUNK: usize = 1024;
            let mut off = offset;
            for chunk in bufs.chunks(IOV_CHUNK) {
                let mut iov: Vec<sys::IoVec> = chunk
                    .iter()
                    .filter(|b| !b.is_empty())
                    .map(|b| sys::IoVec {
                        base: b.as_ptr() as *mut _,
                        len: b.len(),
                    })
                    .collect();
                let mut total: usize = iov.iter().map(|v| v.len).sum();
                let mut start = 0usize;
                while total > 0 {
                    let rc = unsafe {
                        sys::pwritev(
                            self.file.as_raw_fd(),
                            iov[start..].as_ptr(),
                            (iov.len() - start) as std::ffi::c_int,
                            off as i64,
                        )
                    };
                    if rc < 0 {
                        let err = std::io::Error::last_os_error();
                        if err.kind() == std::io::ErrorKind::Interrupted {
                            continue;
                        }
                        return Err(err);
                    }
                    let mut n = rc as usize;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WriteZero,
                            "pwritev wrote 0 bytes",
                        ));
                    }
                    off += n as u64;
                    total -= n;
                    // Skip fully written iovecs; trim a partial one.
                    while n > 0 {
                        if n >= iov[start].len {
                            n -= iov[start].len;
                            start += 1;
                        } else {
                            iov[start].base = unsafe { iov[start].base.cast::<u8>().add(n).cast() };
                            iov[start].len -= n;
                            n = 0;
                        }
                    }
                }
            }
            Ok(())
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            let mut off = offset;
            for buf in bufs {
                self.write_all_at(buf, off)?;
                off += buf.len() as u64;
            }
            Ok(())
        }
    }

    /// Forces written data (and metadata needed to read it back) to disk.
    pub fn sync_data(&self) -> std::io::Result<()> {
        crate::obs::metrics().device_fsyncs.inc();
        retry_io(|| match fault::on_op(Realm::File, OpClass::Fsync, 0) {
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
            _ => self.sync_data_impl(),
        })
    }

    fn sync_data_impl(&self) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            self.file.sync_data()
        }
        #[cfg(not(unix))]
        {
            self.file.lock().sync_data()
        }
    }

    /// Forces data *and all metadata* (including the length) to disk.
    /// Write-ahead-log segments use this when the commit point is the
    /// record reaching the file, not a later superblock flip.
    pub fn sync_all(&self) -> std::io::Result<()> {
        crate::obs::metrics().device_fsyncs.inc();
        retry_io(|| match fault::on_op(Realm::File, OpClass::Fsync, 0) {
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
            _ => self.sync_all_impl(),
        })
    }

    fn sync_all_impl(&self) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            self.file.sync_all()
        }
        #[cfg(not(unix))]
        {
            self.file.lock().sync_all()
        }
    }

    /// Truncates (or extends, zero-filled) the file to `len` bytes.
    /// WAL recovery uses this to chop a torn tail off a log segment so
    /// later appends land on a clean boundary. Faultable as its own
    /// [`OpClass::Trunc`] class (a full disk fails writes, not shrinks).
    pub fn set_len(&self, len: u64) -> std::io::Result<()> {
        retry_io(|| match fault::on_op(Realm::File, OpClass::Trunc, 0) {
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
            _ => self.set_len_impl(len),
        })
    }

    fn set_len_impl(&self, len: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            self.file.set_len(len)
        }
        #[cfg(not(unix))]
        {
            self.file.lock().set_len(len)
        }
    }

    /// Maps the first `len` bytes of the file read-only, or `None` when
    /// the platform has no mmap (non-unix) or the mapping fails for any
    /// reason — callers must treat `None` as "use the positioned-read
    /// path", never as an error. `len` is clamped to the current file
    /// length, and an empty range maps to `None`.
    ///
    /// The mapping is `MAP_SHARED`, so bytes written through the file
    /// descriptor later (appended snapshots) are visible through any
    /// overlapping mapping — callers mapping an immutable committed
    /// region are unaffected. The mapping also pins the inode exactly
    /// like an open descriptor: unlinking or renaming over the file
    /// leaves existing [`Mmap`]s (and their readers) intact.
    pub fn map_readonly(&self, len: u64) -> std::io::Result<Option<Mmap>> {
        if fault::mmap_denied() {
            // An installed schedule is forcing the positioned-read
            // fallback path; `None` is the documented "no mapping" case.
            return Ok(None);
        }
        let len = len.min(self.len()?);
        if len == 0 {
            return Ok(None);
        }
        #[cfg(unix)]
        {
            Ok(Mmap::new(&self.file, len as usize))
        }
        #[cfg(not(unix))]
        {
            Ok(None)
        }
    }

    /// Current file length in bytes.
    pub fn len(&self) -> std::io::Result<u64> {
        #[cfg(unix)]
        {
            Ok(self.file.metadata()?.len())
        }
        #[cfg(not(unix))]
        {
            Ok(self.file.lock().metadata()?.len())
        }
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A read-only shared memory mapping of a file prefix.
///
/// Produced by [`PositionedFile::map_readonly`]; the public surface is
/// just [`Mmap::as_slice`]. The build environment vendors no crates, so
/// on unix the mapping goes through a two-symbol raw FFI declaration of
/// `mmap`/`munmap` against the platform libc that `std` already links;
/// everywhere else `map_readonly` simply returns `None` and callers use
/// positioned reads. The constants used (`PROT_READ = 1`,
/// `MAP_SHARED = 1`) are identical across the unix targets this builds
/// on (Linux, macOS, the BSDs).
///
/// Safety contract: the mapped range must stay within the file (mapping
/// past EOF faults on access), which callers ensure by clamping to the
/// file length at map time and only mapping committed, fsynced regions
/// that never shrink.
#[cfg(unix)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_long, c_void};
    extern "C" {
        // `offset` is declared `c_long` because that is what `off_t`
        // defaults to on every unix ABI (64-bit on LP64, 32-bit on
        // ILP32 — the plain `mmap` symbol, not `mmap64`). We only ever
        // pass 0, so the narrower ILP32 type costs no range.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    /// `struct iovec` — identical layout on every unix ABI.
    #[cfg(target_pointer_width = "64")]
    #[repr(C)]
    pub struct IoVec {
        pub base: *mut c_void,
        pub len: usize,
    }

    #[cfg(target_pointer_width = "64")]
    extern "C" {
        // `off_t` is 64-bit on every LP64 unix; the pointer-width gate
        // keeps us off ILP32, where the plain `pwritev` symbol takes a
        // 32-bit offset and this declaration would corrupt the call.
        pub fn pwritev(fd: c_int, iov: *const IoVec, iovcnt: c_int, offset: i64) -> isize;
    }
}

#[cfg(unix)]
impl Mmap {
    fn new(file: &File, len: usize) -> Option<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX || ptr.is_null() {
            return None; // MAP_FAILED: fall back to positioned reads.
        }
        Some(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes (established in `new`, released only in `drop`).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is mapped (never constructed; for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// SAFETY: the mapping is immutable (PROT_READ) and not tied to any
// thread; concurrent `&`-reads of plain bytes are race-free.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

/// Non-unix stub so downstream types can name the type; never
/// constructed ([`PositionedFile::map_readonly`] returns `None` there).
#[cfg(not(unix))]
pub struct Mmap {
    never: std::convert::Infallible,
}

#[cfg(not(unix))]
impl Mmap {
    /// Unreachable on this platform.
    pub fn as_slice(&self) -> &[u8] {
        match self.never {}
    }

    /// Unreachable on this platform.
    pub fn len(&self) -> usize {
        match self.never {}
    }

    /// Unreachable on this platform.
    pub fn is_empty(&self) -> bool {
        match self.never {}
    }
}

/// Fsyncs a **directory**, making recent entry operations in it (file
/// creation, deletion, rename) durable. POSIX only promises that a
/// rename or a freshly created file survives a crash once its parent
/// directory is synced; WAL segment rotation and the atomic-rename
/// store compaction in `pr-live` call this after every such step. On
/// non-unix platforms this is a best-effort no-op (the rename itself is
/// still atomic; only its crash-durability ordering is weaker).
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    retry_io(|| match fault::on_op(Realm::File, OpClass::Fsync, 0) {
        Decision::Fail(e) | Decision::Torn { errno: e, .. } => Err(e.to_io_error()),
        _ => fsync_dir_impl(dir),
    })
}

fn fsync_dir_impl(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// In-memory block device: blocks live in a `Vec`, transfers are memcpys.
///
/// Deterministic and fast; the default substrate for all experiments.
pub struct MemDevice {
    block_size: usize,
    blocks: RwLock<Vec<Option<Box<[u8]>>>>,
    counters: Arc<IoCounters>,
}

impl MemDevice {
    /// Creates an empty device with the given block size.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        MemDevice {
            block_size,
            blocks: RwLock::new(Vec::new()),
            counters: IoCounters::new(),
        }
    }

    /// Creates an empty device with the paper's 4KB blocks.
    pub fn default_size() -> Self {
        MemDevice::new(DEFAULT_BLOCK_SIZE)
    }

    /// Bytes currently held, excluding discarded blocks (for capacity
    /// assertions in tests).
    pub fn resident_bytes(&self) -> usize {
        self.blocks.read().iter().filter(|b| b.is_some()).count() * self.block_size
    }
}

impl BlockDevice for MemDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.read().len() as u64
    }

    fn allocate(&self, n: u64) -> BlockId {
        let mut blocks = self.blocks.write();
        let first = blocks.len() as u64;
        for _ in 0..n {
            blocks.push(Some(vec![0u8; self.block_size].into_boxed_slice()));
        }
        first
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let flip = match fault::on_op(Realm::Mem, OpClass::Read, buf.len()) {
            Decision::Proceed => None,
            Decision::Fail(e) | Decision::Torn { errno: e, .. } => {
                return Err(EmError::Io(e.to_io_error()))
            }
            Decision::FlipBit { bit } => Some(bit),
        };
        let blocks = self.blocks.read();
        let slot = blocks.get(block as usize).ok_or(EmError::BlockOutOfRange {
            block,
            len: blocks.len() as u64,
        })?;
        let src = slot
            .as_ref()
            .ok_or_else(|| EmError::Corrupt(format!("read of discarded block {block}")))?;
        buf.copy_from_slice(src);
        drop(blocks);
        if let Some(bit) = flip {
            fault::flip_bit(buf, bit);
        }
        self.counters.add_reads(1);
        Ok(())
    }

    fn with_block(
        &self,
        block: BlockId,
        scratch: &mut Vec<u8>,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<()> {
        let decision = fault::on_op(Realm::Mem, OpClass::Read, self.block_size);
        if let Decision::Fail(e) | Decision::Torn { errno: e, .. } = decision {
            return Err(EmError::Io(e.to_io_error()));
        }
        // Zero-copy: hand out the stored block under a *read* lock (any
        // number of concurrent readers) instead of memcpy-ing a page the
        // caller will only transcode once.
        let blocks = self.blocks.read();
        let slot = blocks.get(block as usize).ok_or(EmError::BlockOutOfRange {
            block,
            len: blocks.len() as u64,
        })?;
        let src = slot
            .as_ref()
            .ok_or_else(|| EmError::Corrupt(format!("read of discarded block {block}")))?;
        if let Decision::FlipBit { bit } = decision {
            scratch.clear();
            scratch.extend_from_slice(src);
            fault::flip_bit(scratch, bit);
            f(scratch);
        } else {
            f(src);
        }
        drop(blocks);
        self.counters.add_reads(1);
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let decision = fault::on_op(Realm::Mem, OpClass::Write, buf.len());
        if let Decision::Fail(e) = decision {
            return Err(EmError::Io(e.to_io_error()));
        }
        let mut blocks = self.blocks.write();
        let len = blocks.len() as u64;
        let slot = blocks
            .get_mut(block as usize)
            .ok_or(EmError::BlockOutOfRange { block, len })?;
        match decision {
            Decision::Torn { keep, errno } => {
                // A prefix lands, then the write fails — same shape a
                // file-backed short write leaves on disk.
                match slot {
                    Some(dst) => dst[..keep].copy_from_slice(&buf[..keep]),
                    None => {
                        let mut fresh = vec![0u8; self.block_size];
                        fresh[..keep].copy_from_slice(&buf[..keep]);
                        *slot = Some(fresh.into_boxed_slice());
                    }
                }
                return Err(EmError::Io(errno.to_io_error()));
            }
            Decision::FlipBit { bit } => {
                let mut copy = buf.to_vec();
                fault::flip_bit(&mut copy, bit);
                match slot {
                    Some(dst) => dst.copy_from_slice(&copy),
                    None => *slot = Some(copy.into_boxed_slice()),
                }
            }
            _ => match slot {
                Some(dst) => dst.copy_from_slice(buf),
                None => *slot = Some(buf.to_vec().into_boxed_slice()),
            },
        }
        drop(blocks);
        self.counters.add_writes(1);
        Ok(())
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }

    fn discard(&self, ids: &[BlockId]) {
        let mut blocks = self.blocks.write();
        for &id in ids {
            if let Some(slot) = blocks.get_mut(id as usize) {
                *slot = None;
            }
        }
    }
}

/// File-backed block device. Blocks are stored contiguously in one file.
///
/// I/O is positioned ([`PositionedFile`]): concurrent readers issue
/// `pread`s in parallel instead of serializing on one seek cursor.
pub struct FileDevice {
    block_size: usize,
    file: PositionedFile,
    num_blocks: AtomicU64,
    counters: Arc<IoCounters>,
}

impl FileDevice {
    /// Creates (truncating) a device backed by the file at `path`.
    pub fn create(path: &Path, block_size: usize) -> Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDevice {
            block_size,
            file: PositionedFile::new(file),
            num_blocks: AtomicU64::new(0),
            counters: IoCounters::new(),
        })
    }

    /// Opens an existing file as a device. The block count is the file
    /// length divided by `block_size`, rounding a ragged tail up (the
    /// tail reads zero-padded).
    pub fn open(path: &Path, block_size: usize) -> Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileDevice {
            block_size,
            file: PositionedFile::new(file),
            num_blocks: AtomicU64::new(len.div_ceil(block_size as u64)),
            counters: IoCounters::new(),
        })
    }
}

impl BlockDevice for FileDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks.load(Ordering::Acquire)
    }

    fn allocate(&self, n: u64) -> BlockId {
        // The file is grown lazily on write; sparse files make allocation
        // cheap, matching the in-memory device's free allocation.
        self.num_blocks.fetch_add(n, Ordering::AcqRel)
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let len = self.num_blocks();
        if block >= len {
            return Err(EmError::BlockOutOfRange { block, len });
        }
        self.file
            .read_exact_or_zero_at(buf, block * self.block_size as u64)?;
        self.counters.add_reads(1);
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(EmError::BadBufferSize {
                got: buf.len(),
                want: self.block_size,
            });
        }
        let len = self.num_blocks();
        if block >= len {
            return Err(EmError::BlockOutOfRange { block, len });
        }
        self.file
            .write_all_at(buf, block * self.block_size as u64)?;
        self.counters.add_writes(1);
        Ok(())
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn BlockDevice) {
        let bs = dev.block_size();
        let first = dev.allocate(3);
        assert_eq!(dev.num_blocks(), 3);
        let mut buf = vec![0xABu8; bs];
        buf[0] = 1;
        dev.write_block(first + 1, &buf).unwrap();
        let mut out = vec![0u8; bs];
        dev.read_block(first + 1, &mut out).unwrap();
        assert_eq!(out, buf);
        // Unwritten blocks read as zeros.
        dev.read_block(first, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        // Accounting: 1 write, 2 reads.
        let s = dev.io_stats();
        assert_eq!((s.reads, s.writes), (2, 1));
    }

    #[test]
    fn mem_device_roundtrip_and_accounting() {
        roundtrip(&MemDevice::new(512));
    }

    #[test]
    fn file_device_roundtrip_and_accounting() {
        let dir = std::env::temp_dir().join(format!("pr-em-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.bin");
        roundtrip(&FileDevice::create(&path, 512).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_is_an_error() {
        let dev = MemDevice::new(64);
        dev.allocate(1);
        let mut buf = vec![0u8; 64];
        assert!(matches!(
            dev.read_block(5, &mut buf),
            Err(EmError::BlockOutOfRange { block: 5, len: 1 })
        ));
        assert!(matches!(
            dev.write_block(1, &buf),
            Err(EmError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_buffer_size_is_an_error() {
        let dev = MemDevice::new(64);
        dev.allocate(1);
        let mut small = vec![0u8; 32];
        assert!(matches!(
            dev.read_block(0, &mut small),
            Err(EmError::BadBufferSize { got: 32, want: 64 })
        ));
    }

    #[test]
    fn allocation_is_free_of_io() {
        let dev = MemDevice::new(64);
        dev.allocate(100);
        assert_eq!(dev.io_stats().total(), 0);
        assert_eq!(dev.resident_bytes(), 6400);
    }

    #[test]
    fn discard_reclaims_memory_and_poisons_reads() {
        let dev = MemDevice::new(64);
        dev.allocate(4);
        let buf = vec![1u8; 64];
        dev.write_block(0, &buf).unwrap();
        dev.write_block(1, &buf).unwrap();
        dev.discard(&[0, 1]);
        assert_eq!(dev.resident_bytes(), 2 * 64);
        let mut out = vec![0u8; 64];
        assert!(matches!(
            dev.read_block(0, &mut out),
            Err(EmError::Corrupt(_))
        ));
        // Rewriting a discarded block revives it.
        dev.write_block(0, &buf).unwrap();
        dev.read_block(0, &mut out).unwrap();
        assert_eq!(out, buf);
        // Discard is free of I/O cost: 3 writes + 1 read so far.
        let s = dev.io_stats();
        assert_eq!((s.reads, s.writes), (1, 3));
    }

    #[test]
    fn default_block_size_matches_paper() {
        assert_eq!(MemDevice::default_size().block_size(), 4096);
    }

    #[test]
    fn file_device_reopen_preserves_contents() {
        let dir = std::env::temp_dir().join(format!("pr-em-reopen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.bin");
        let mut block = vec![7u8; 256];
        block[0] = 42;
        {
            let dev = FileDevice::create(&path, 256).unwrap();
            dev.allocate(2);
            dev.write_block(1, &block).unwrap();
            dev.sync().unwrap();
        }
        let dev = FileDevice::open(&path, 256).unwrap();
        assert_eq!(dev.num_blocks(), 2);
        let mut out = vec![0u8; 256];
        dev.read_block(1, &mut out).unwrap();
        assert_eq!(out, block);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_concurrent_positioned_reads() {
        let dir = std::env::temp_dir().join(format!("pr-em-conc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conc.bin");
        let dev = FileDevice::create(&path, 128).unwrap();
        let blocks = 64u64;
        dev.allocate(blocks);
        for b in 0..blocks {
            dev.write_block(b, &[b as u8; 128]).unwrap();
        }
        // Readers hammer disjoint and overlapping blocks; positioned I/O
        // must return each block's own bytes regardless of interleaving.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dev = &dev;
                s.spawn(move || {
                    let mut buf = vec![0u8; 128];
                    for round in 0..50u64 {
                        let b = (t * 17 + round) % blocks;
                        dev.read_block(b, &mut buf).unwrap();
                        assert!(buf.iter().all(|&x| x == b as u8), "block {b} torn");
                    }
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_is_a_noop_for_memory_and_counted_free_for_files() {
        let mem = MemDevice::new(64);
        mem.sync().unwrap();
        assert_eq!(mem.io_stats().total(), 0);
    }

    #[test]
    fn map_readonly_sees_written_bytes_and_clamps() {
        let dir = std::env::temp_dir().join(format!("pr-em-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.bin");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        let pf = PositionedFile::new(file);
        let payload: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        pf.write_all_at(&payload, 0).unwrap();
        pf.sync_data().unwrap();

        // An empty request (or an empty file) maps to None, not an error.
        assert!(pf.map_readonly(0).unwrap().is_none());

        if let Some(map) = pf.map_readonly(u64::MAX).unwrap() {
            // Clamped to the real file length.
            assert_eq!(map.len(), 8192);
            assert!(!map.is_empty());
            assert_eq!(map.as_slice(), &payload[..]);
            // MAP_SHARED: a later positioned write is visible through
            // the existing mapping (the store only maps immutable
            // regions, but the primitive must not cache stale bytes).
            pf.write_all_at(&[0xEE; 16], 100).unwrap();
            assert_eq!(&map.as_slice()[100..116], &[0xEE; 16]);
            // The mapping pins the inode across unlink.
            std::fs::remove_file(&path).unwrap();
            assert_eq!(&map.as_slice()[0..4], &payload[0..4]);
        } else {
            // Non-unix (or exotic) platform: the fallback contract is
            // simply "None", which callers translate to positioned reads.
            std::fs::remove_file(&path).ok();
        }
    }
}
