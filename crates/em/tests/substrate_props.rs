//! Property-based tests for the external-memory substrate.

use pr_em::{
    external_sort, external_sort_by, BlockDevice, BufferPool, MemDevice, SortConfig, Stream,
    StreamReader, StreamWriter,
};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// External sort agrees with std sort for any input and any legal
    /// (block size, memory budget) combination.
    #[test]
    fn external_sort_matches_std_sort(
        mut input in prop::collection::vec(any::<u32>(), 0..2000),
        block_pow in 5u32..9,          // 32..256-byte blocks
        mem_blocks in 3usize..40,
    ) {
        let block = 1usize << block_pow;
        let dev = MemDevice::new(block);
        let stream = Stream::from_iter(&dev, input.iter().copied()).unwrap();
        let sorted = external_sort::<u32>(
            &dev,
            &stream,
            SortConfig::with_memory(mem_blocks * block),
        )
        .unwrap();
        let got = sorted.read_all::<u32>(&dev).unwrap();
        input.sort_unstable();
        prop_assert_eq!(got, input);
    }

    /// Sorting is stable under a comparator that ignores part of the key.
    #[test]
    fn external_sort_by_is_stable(
        keys in prop::collection::vec(0u32..16, 1..800),
    ) {
        // Tag each key with its input position in the high bits.
        let tagged: Vec<u32> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| ((i as u32) << 8) | k)
            .collect();
        let dev = MemDevice::new(64);
        let stream = Stream::from_iter(&dev, tagged.iter().copied()).unwrap();
        let sorted = external_sort_by::<u32, _>(
            &dev,
            &stream,
            SortConfig::with_memory(4 * 64),
            |a, b| (a & 0xFF).cmp(&(b & 0xFF)),
        )
        .unwrap();
        let got = sorted.read_all::<u32>(&dev).unwrap();
        for w in got.windows(2) {
            let (ka, kb) = (w[0] & 0xFF, w[1] & 0xFF);
            prop_assert!(ka <= kb);
            if ka == kb {
                prop_assert!(w[0] >> 8 < w[1] >> 8, "stability violated");
            }
        }
    }

    /// Stream write/read round-trips arbitrary record sequences and
    /// charges exactly ⌈n/per_block⌉ blocks each way.
    #[test]
    fn stream_roundtrip_and_cost(
        input in prop::collection::vec(any::<u64>(), 0..1500),
        block_pow in 5u32..10,
    ) {
        let block = 1usize << block_pow;
        let per_block = block / 8;
        let dev = MemDevice::new(block);
        let mut w = StreamWriter::<u64>::new(&dev);
        for v in &input {
            w.push(v).unwrap();
        }
        let s = w.finish().unwrap();
        let expected_blocks = input.len().div_ceil(per_block) as u64;
        prop_assert_eq!(dev.io_stats().writes, expected_blocks);
        prop_assert_eq!(s.read_all::<u64>(&dev).unwrap(), input);
        prop_assert_eq!(dev.io_stats().reads, expected_blocks);
    }

    /// A buffer pool never changes observable block contents, whatever
    /// the interleaving of reads and writes, and never exceeds capacity.
    #[test]
    fn buffer_pool_is_transparent(
        ops in prop::collection::vec((0u64..16, any::<u8>(), any::<bool>()), 1..300),
        capacity in 1usize..8,
    ) {
        let dev = Arc::new(MemDevice::new(32));
        dev.allocate(16);
        let pool = BufferPool::new(dev.clone(), capacity);
        let mut model = vec![vec![0u8; 32]; 16];
        for (block, byte, is_write) in ops {
            if is_write {
                let buf = vec![byte; 32];
                pool.write(block, &buf).unwrap();
                model[block as usize] = buf;
            } else {
                let mut buf = vec![0u8; 32];
                pool.read(block, &mut buf).unwrap();
                prop_assert_eq!(&buf, &model[block as usize]);
            }
            prop_assert!(pool.cached_blocks() <= capacity);
        }
        // After a flush the device agrees with the model everywhere.
        pool.flush().unwrap();
        for (i, want) in model.iter().enumerate() {
            let mut buf = vec![0u8; 32];
            dev.read_block(i as u64, &mut buf).unwrap();
            prop_assert_eq!(&buf, want);
        }
    }

    /// Readers see exactly the stream they were given even when many
    /// streams interleave on one device.
    #[test]
    fn interleaved_streams_do_not_cross_talk(
        a in prop::collection::vec(any::<u32>(), 1..500),
        b in prop::collection::vec(any::<u32>(), 1..500),
    ) {
        let dev = MemDevice::new(64);
        let mut wa = StreamWriter::<u32>::new(&dev);
        let mut wb = StreamWriter::<u32>::new(&dev);
        let (mut ia, mut ib) = (a.iter(), b.iter());
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (x, y) => {
                    if let Some(v) = x { wa.push(v).unwrap(); }
                    if let Some(v) = y { wb.push(v).unwrap(); }
                }
            }
        }
        let sa = wa.finish().unwrap();
        let sb = wb.finish().unwrap();
        prop_assert_eq!(StreamReader::<u32>::new(&dev, &sa).collect::<Vec<_>>(), a);
        prop_assert_eq!(StreamReader::<u32>::new(&dev, &sb).collect::<Vec<_>>(), b);
    }
}
