//! Failure injection: the substrate must fail loudly and precisely, not
//! corrupt silently.

use pr_em::{
    external_sort, BlockDevice, EmError, MemDevice, SortConfig, Stream, StreamReader, StreamWriter,
};

#[test]
fn reading_a_discarded_stream_is_an_error_not_garbage() {
    let dev = MemDevice::new(64);
    let s = Stream::from_iter(&dev, 0..100u32).unwrap();
    let s2 = s.clone();
    s.discard(&dev);
    let mut reader = StreamReader::<u32>::new(&dev, &s2);
    let err = reader.next_record().unwrap_err();
    assert!(matches!(err, EmError::Corrupt(_)), "got {err:?}");
}

#[test]
fn sort_surfaces_read_errors() {
    let dev = MemDevice::new(64);
    let s = Stream::from_iter(&dev, 0..500u32).unwrap();
    let s2 = s.clone();
    s.discard(&dev);
    let res = external_sort::<u32>(&dev, &s2, SortConfig::with_memory(1024));
    assert!(res.is_err());
}

#[test]
fn block_bounds_are_enforced_everywhere() {
    let dev = MemDevice::new(64);
    dev.allocate(2);
    let mut buf = vec![0u8; 64];
    for bad in [2u64, 100, u64::MAX] {
        assert!(matches!(
            dev.read_block(bad, &mut buf),
            Err(EmError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            dev.write_block(bad, &buf),
            Err(EmError::BlockOutOfRange { .. })
        ));
    }
}

#[test]
fn discard_of_unknown_blocks_is_harmless() {
    let dev = MemDevice::new(64);
    dev.allocate(1);
    dev.discard(&[5, 99, u64::MAX]); // out of range: ignored
    let mut buf = vec![0u8; 64];
    dev.read_block(0, &mut buf).unwrap();
}

#[test]
fn writer_state_survives_partial_use() {
    // A writer dropped without finish() must not corrupt other streams
    // on the same device (its buffered tail simply never lands).
    let dev = MemDevice::new(64);
    {
        let mut w = StreamWriter::<u32>::new(&dev);
        for i in 0..10 {
            w.push(&i).unwrap();
        }
        // dropped without finish()
    }
    let s = Stream::from_iter(&dev, 100..200u32).unwrap();
    assert_eq!(
        s.read_all::<u32>(&dev).unwrap(),
        (100..200).collect::<Vec<_>>()
    );
}

#[test]
fn io_error_messages_carry_context() {
    let dev = MemDevice::new(64);
    dev.allocate(1);
    let mut buf = vec![0u8; 32];
    let err = dev.read_block(0, &mut buf).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("32") && msg.contains("64"), "{msg}");
}

#[test]
fn sort_budget_validation_is_exact() {
    let dev = MemDevice::new(1024);
    let s = Stream::from_iter(&dev, 0..10u32).unwrap();
    // 3 blocks is the documented minimum.
    assert!(external_sort::<u32>(&dev, &s, SortConfig::with_memory(3 * 1024)).is_ok());
    assert!(matches!(
        external_sort::<u32>(&dev, &s, SortConfig::with_memory(3 * 1024 - 1)),
        Err(EmError::BudgetTooSmall(_))
    ));
}
