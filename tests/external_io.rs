//! Integration: external construction — correctness against the
//! in-memory loaders and the paper's construction-cost ordering.

use pr_data::uniform_points;
use prtree::prelude::*;
use prtree::tree::bulk::external::load_hilbert_external;
use prtree::tree::bulk::tgs_external::TgsExternalLoader;
use prtree::tree::Entry;
use std::sync::Arc;

fn leaf_groups(t: &RTree<2>) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut stack = vec![t.root()];
    while let Some(p) = stack.pop() {
        let (node, _) = t.read_node(p).unwrap();
        if node.is_leaf() {
            let mut ids: Vec<u32> = node.entries.iter().map(|e| e.ptr).collect();
            ids.sort_unstable();
            out.push(ids);
        } else {
            for e in &node.entries {
                stack.push(e.ptr as u64);
            }
        }
    }
    out.sort();
    out
}

fn build_stream(dev: &dyn BlockDevice, items: &[Item<2>]) -> Stream {
    Stream::from_iter(dev, items.iter().map(|&i| Entry::<2>::from_item(i))).unwrap()
}

#[test]
fn external_loaders_build_the_same_trees_as_in_memory() {
    let items = uniform_points(4_000, 21);
    let params = TreeParams::with_cap::<2>(16);
    let config = ExternalConfig::with_memory(50 * params.page_size);

    // PR.
    let dev_a: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mem_pr = PrTreeLoader::default()
        .load(Arc::clone(&dev_a), params, items.clone())
        .unwrap();
    let dev_b: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let input = build_stream(dev_b.as_ref(), &items);
    let ext_pr = PrExternalLoader::new(config)
        .load::<2>(Arc::clone(&dev_b), params, &input)
        .unwrap();
    assert_eq!(leaf_groups(&mem_pr), leaf_groups(&ext_pr), "PR");

    // TGS.
    let dev_c: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mem_tgs = TgsLoader
        .load(Arc::clone(&dev_c), params, items.clone())
        .unwrap();
    let dev_d: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let input = build_stream(dev_d.as_ref(), &items);
    let ext_tgs = TgsExternalLoader::new(config)
        .load::<2>(Arc::clone(&dev_d), params, &input)
        .unwrap();
    assert_eq!(leaf_groups(&mem_tgs), leaf_groups(&ext_tgs), "TGS");

    // H and H4.
    for corners in [false, true] {
        let loader = if corners {
            HilbertLoader::corners()
        } else {
            HilbertLoader::centers()
        };
        let dev_e: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let mem_h = loader
            .load(Arc::clone(&dev_e), params, items.clone())
            .unwrap();
        let dev_f: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = build_stream(dev_f.as_ref(), &items);
        let ext_h = load_hilbert_external::<2>(Arc::clone(&dev_f), params, &input, config, corners)
            .unwrap();
        assert_eq!(
            leaf_groups(&mem_h),
            leaf_groups(&ext_h),
            "corners={corners}"
        );
    }
}

#[test]
fn construction_io_ordering_matches_figure_9() {
    // The paper's Figure 9: H < PR < TGS in block transfers, under a
    // paper-like N/M ≈ 9 budget.
    let n = 20_000u32;
    let items = uniform_points(n, 33);
    let params = TreeParams::with_cap::<2>(64);
    let memory = (n as usize / 9) * 40;
    let config = ExternalConfig::with_memory(memory);

    let cost = |which: u8| -> u64 {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = build_stream(dev.as_ref(), &items);
        let before = dev.io_stats();
        match which {
            0 => {
                load_hilbert_external::<2>(Arc::clone(&dev), params, &input, config, false)
                    .unwrap();
            }
            1 => {
                PrExternalLoader::new(config)
                    .load::<2>(Arc::clone(&dev), params, &input)
                    .unwrap();
            }
            _ => {
                TgsExternalLoader::new(config)
                    .load::<2>(Arc::clone(&dev), params, &input)
                    .unwrap();
            }
        }
        dev.io_stats().since(before).total()
    };
    let (h, pr, tgs) = (cost(0), cost(1), cost(2));
    assert!(h < pr, "H ({h}) should be cheaper than PR ({pr})");
    assert!(pr < tgs, "PR ({pr}) should be cheaper than TGS ({tgs})");
    assert!(
        tgs > 2 * pr,
        "TGS ({tgs}) should be several times PR ({pr}) — paper: ≈4.5×"
    );
}

#[test]
fn file_backed_device_runs_the_full_pipeline() {
    let items = uniform_points(2_000, 44);
    let params = TreeParams::with_cap::<2>(16);
    let path = std::env::temp_dir().join(format!("prtree-it-{}.bin", std::process::id()));
    let dev: Arc<dyn BlockDevice> = Arc::new(FileDevice::create(&path, params.page_size).unwrap());
    let input = build_stream(dev.as_ref(), &items);
    let tree = PrExternalLoader::new(ExternalConfig::with_memory(20 * params.page_size))
        .load::<2>(Arc::clone(&dev), params, &input)
        .unwrap();
    tree.validate().unwrap().assert_ok();
    let hits = tree.window(&Rect::xyxy(0.1, 0.1, 0.4, 0.4)).unwrap();
    let want = items
        .iter()
        .filter(|i| i.rect.intersects(&Rect::xyxy(0.1, 0.1, 0.4, 0.4)))
        .count();
    assert_eq!(hits.len(), want);
    std::fs::remove_file(&path).ok();
}

#[test]
fn memory_budget_changes_pass_structure_not_results() {
    let items = uniform_points(3_000, 55);
    let params = TreeParams::with_cap::<2>(16);
    let mut costs = Vec::new();
    let mut groups = Vec::new();
    for mem_pages in [12usize, 60, 6000] {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = build_stream(dev.as_ref(), &items);
        let config = ExternalConfig::with_memory(mem_pages * params.page_size);
        let before = dev.io_stats();
        let tree = PrExternalLoader::new(config)
            .load::<2>(Arc::clone(&dev), params, &input)
            .unwrap();
        costs.push(dev.io_stats().since(before).total());
        groups.push(leaf_groups(&tree));
    }
    assert_eq!(groups[0], groups[1]);
    assert_eq!(groups[1], groups[2]);
    assert!(
        costs[0] > costs[2],
        "smaller memory must cost more I/O: {costs:?}"
    );
}
