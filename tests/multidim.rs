//! Integration: the d-dimensional generalization (§2.3) — every loader
//! in 1-D and 3-D, checked against brute force.

use prtree::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_boxes_3d(n: u32, seed: u64) -> Vec<Item<3>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let p = [
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
            ];
            let e = [
                rng.gen_range(0.0..0.5),
                rng.gen_range(0.0..0.5),
                rng.gen_range(0.0..0.5),
            ];
            Item::new(Rect::new(p, [p[0] + e[0], p[1] + e[1], p[2] + e[2]]), id)
        })
        .collect()
}

fn brute3(items: &[Item<3>], q: &Rect<3>) -> Vec<u32> {
    let mut ids: Vec<u32> = items
        .iter()
        .filter(|i| i.rect.intersects(q))
        .map(|i| i.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn three_dimensional_loaders_agree_with_brute_force() {
    let items = random_boxes_3d(2_000, 5);
    let params = TreeParams::with_cap::<3>(16);
    let mut rng = SmallRng::seed_from_u64(8);
    let loaders: Vec<(&str, Box<dyn BulkLoader<3>>)> = vec![
        ("PR", Box::new(PrTreeLoader::default())),
        ("H", Box::new(HilbertLoader::centers())),
        ("H4(6d)", Box::new(HilbertLoader::corners())),
        ("TGS", Box::new(TgsLoader)),
        ("STR", Box::new(StrLoader)),
    ];
    for (name, loader) in loaders {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = loader.load(dev, params, items.clone()).unwrap();
        tree.validate().unwrap().assert_ok();
        for _ in 0..10 {
            let lo = [
                rng.gen_range(0.0..8.0),
                rng.gen_range(0.0..8.0),
                rng.gen_range(0.0..8.0),
            ];
            let q = Rect::new(lo, [lo[0] + 2.0, lo[1] + 2.0, lo[2] + 2.0]);
            let mut got: Vec<u32> = tree.window(&q).unwrap().iter().map(|i| i.id).collect();
            got.sort_unstable();
            assert_eq!(got, brute3(&items, &q), "{name}");
        }
    }
}

#[test]
fn one_dimensional_intervals_work() {
    // Degenerate but legal: 1-D interval trees (2 mapped axes).
    let mut rng = SmallRng::seed_from_u64(2);
    let items: Vec<Item<1>> = (0..1_000)
        .map(|id| {
            let x: f64 = rng.gen_range(0.0..100.0);
            Item::new(Rect::new([x], [x + rng.gen_range(0.0..2.0)]), id)
        })
        .collect();
    let params = TreeParams::with_cap::<1>(8);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = PrTreeLoader::default()
        .load(dev, params, items.clone())
        .unwrap();
    tree.validate().unwrap().assert_ok();
    let q = Rect::new([25.0], [30.0]);
    let want = items.iter().filter(|i| i.rect.intersects(&q)).count();
    assert_eq!(tree.window(&q).unwrap().len(), want);
}

#[test]
fn three_dimensional_pseudo_pr_tree() {
    let items = random_boxes_3d(1_500, 11);
    let pseudo = PseudoPrTree::build(items.clone(), 16);
    assert_eq!(pseudo.len(), 1_500);
    assert!(pseudo.max_leaf_len() <= 16);
    let q = Rect::new([2.0, 2.0, 2.0], [6.0, 6.0, 6.0]);
    let mut got: Vec<u32> = pseudo.window(&q).iter().map(|i| i.id).collect();
    got.sort_unstable();
    assert_eq!(got, brute3(&items, &q));
}
