//! Concurrent-read correctness for the sharded-cache runtime.
//!
//! The refactor's contract: any number of threads may query one
//! `&RTree` concurrently, and neither results nor the exact I/O / cache
//! accounting may differ from a serial run. These tests pin that down
//! against `brute_force_window` ground truth.

use prtree::prelude::*;
use prtree::tree::query::brute_force_window;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_items(n: u32, seed: u64) -> Vec<Item<2>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x: f64 = rng.gen_range(0.0..100.0);
            let y: f64 = rng.gen_range(0.0..100.0);
            let w: f64 = rng.gen_range(0.0..3.0);
            let h: f64 = rng.gen_range(0.0..3.0);
            Item::new(Rect::xyxy(x, y, x + w, y + h), i)
        })
        .collect()
}

fn random_windows(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..90.0);
            let y: f64 = rng.gen_range(0.0..90.0);
            let w: f64 = rng.gen_range(0.5..10.0);
            let h: f64 = rng.gen_range(0.5..10.0);
            Rect::xyxy(x, y, x + w, y + h)
        })
        .collect()
}

fn build(items: &[Item<2>]) -> RTree<2> {
    let params = TreeParams::with_cap::<2>(16);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    PrTreeLoader::default()
        .load(dev, params, items.to_vec())
        .unwrap()
}

fn sorted_ids(items: &[Item<2>]) -> Vec<u32> {
    let mut ids: Vec<u32> = items.iter().map(|i| i.id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn n_threads_of_random_windows_match_brute_force() {
    let items = random_items(4_000, 21);
    let tree = build(&items);
    tree.warm_cache().unwrap();
    let windows = random_windows(64, 22);

    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let tree = &tree;
            let items = &items;
            let windows = &windows;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + t);
                for _ in 0..40 {
                    let q = &windows[rng.gen_range(0..windows.len())];
                    let got = tree.window(q).unwrap();
                    let want = brute_force_window(items, q);
                    assert_eq!(sorted_ids(&got), sorted_ids(&want), "window {q:?}");
                }
            });
        }
    });
}

#[test]
fn par_windows_matches_serial_results_and_leaf_ios() {
    let items = random_items(6_000, 31);
    let tree = build(&items);
    tree.warm_cache().unwrap();
    let windows = random_windows(200, 32);

    let serial: Vec<_> = windows
        .iter()
        .map(|q| tree.window_with_stats(q).unwrap())
        .collect();

    for threads in [1, 2, 4, 8] {
        let parallel = tree.par_windows(&windows, threads).unwrap();
        assert_eq!(parallel.len(), serial.len());
        for (i, ((pr, ps), (sr, ss))) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(
                sorted_ids(pr),
                sorted_ids(sr),
                "query {i} results differ at {threads} threads"
            );
            assert_eq!(
                ps, ss,
                "query {i} stats differ at {threads} threads (incl. leaf I/Os)"
            );
        }
    }
}

#[test]
fn concurrent_cache_totals_match_serial_run() {
    let items = random_items(5_000, 41);
    let windows = random_windows(96, 42);

    // Serial reference: fresh tree, warm cache, run all windows once.
    let serial_tree = build(&items);
    serial_tree.warm_cache().unwrap();
    let warm_baseline = serial_tree.cache_stats();
    for q in &windows {
        serial_tree.window(q).unwrap();
    }
    let (sh, sm) = serial_tree.cache_stats();
    let serial_delta = (sh - warm_baseline.0, sm - warm_baseline.1);

    // Concurrent run over an identically built tree: same windows, all
    // threads at once via par_windows.
    let par_tree = build(&items);
    par_tree.warm_cache().unwrap();
    let par_baseline = par_tree.cache_stats();
    assert_eq!(
        par_baseline, warm_baseline,
        "identical builds warm identically"
    );
    par_tree.par_windows(&windows, 8).unwrap();
    let (ph, pm) = par_tree.cache_stats();
    let par_delta = (ph - par_baseline.0, pm - par_baseline.1);

    assert_eq!(
        par_delta, serial_delta,
        "hit/miss totals must be exact under concurrency"
    );
}

#[test]
fn par_windows_handles_edge_batches() {
    let items = random_items(500, 51);
    let tree = build(&items);
    tree.warm_cache().unwrap();

    // Empty batch.
    assert!(tree.par_windows(&[], 4).unwrap().is_empty());

    // More threads than queries.
    let one = vec![Rect::xyxy(10.0, 10.0, 20.0, 20.0)];
    let got = tree.par_windows(&one, 16).unwrap();
    assert_eq!(got.len(), 1);
    let (serial, serial_stats) = tree.window_with_stats(&one[0]).unwrap();
    assert_eq!(sorted_ids(&got[0].0), sorted_ids(&serial));
    assert_eq!(got[0].1, serial_stats);

    // threads = 0 → auto (available parallelism).
    let windows = random_windows(10, 52);
    let auto = tree.par_windows(&windows, 0).unwrap();
    assert_eq!(auto.len(), windows.len());
}

#[test]
fn concurrent_knn_agrees_with_serial() {
    let items = random_items(3_000, 61);
    let tree = build(&items);
    tree.warm_cache().unwrap();

    let serial: Vec<Vec<u32>> = (0..16)
        .map(|i| {
            let p = Point::new([(i * 6) as f64, (i * 5) as f64]);
            tree.nearest_neighbors(&p, 10)
                .unwrap()
                .iter()
                .map(|(it, _)| it.id)
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let tree = &tree;
            let serial = &serial;
            scope.spawn(move || {
                for (i, want) in serial.iter().enumerate() {
                    let p = Point::new([(i * 6) as f64, (i * 5) as f64]);
                    let got: Vec<u32> = tree
                        .nearest_neighbors(&p, 10)
                        .unwrap()
                        .iter()
                        .map(|(it, _)| it.id)
                        .collect();
                    assert_eq!(&got, want, "thread {t} query {i}");
                }
            });
        }
    });
}

#[test]
fn uncached_concurrent_queries_still_correct() {
    // CachePolicy::None: every visit is a device read; the device itself
    // synchronizes. Results must still be exact.
    let items = random_items(2_000, 71);
    let tree = build(&items);
    tree.set_cache_policy(CachePolicy::None);
    let windows = random_windows(32, 72);

    let serial: Vec<Vec<u32>> = windows
        .iter()
        .map(|q| sorted_ids(&tree.window(q).unwrap()))
        .collect();
    let parallel = tree.par_windows(&windows, 6).unwrap();
    for (i, (pr, _)) in parallel.iter().enumerate() {
        assert_eq!(sorted_ids(pr), serial[i]);
    }
}
