//! Integration: dynamic maintenance on bulk-loaded trees and the
//! LPR-tree, cross-checked against a naive reference index.

use pr_data::uniform_points;
use prtree::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn brute(items: &[Item<2>], q: &Rect<2>) -> Vec<u32> {
    let mut ids: Vec<u32> = items
        .iter()
        .filter(|i| i.rect.intersects(q))
        .map(|i| i.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn every_bulk_loaded_variant_survives_update_storms() {
    let params = TreeParams::with_cap::<2>(8);
    let items = uniform_points(800, 1);
    for kind in LoaderKind::all() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let mut tree = kind.loader::<2>().load(dev, params, items.clone()).unwrap();
        let mut reference = items.clone();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut next_id = 100_000u32;
        for _ in 0..400 {
            if rng.gen_bool(0.5) && !reference.is_empty() {
                let idx = rng.gen_range(0..reference.len());
                let victim = reference.swap_remove(idx);
                assert!(
                    tree.delete(&victim, SplitPolicy::Quadratic).unwrap(),
                    "{}: delete failed",
                    kind.name()
                );
            } else {
                let x: f64 = rng.gen_range(0.0..1.0);
                let y: f64 = rng.gen_range(0.0..1.0);
                let it = Item::new(Rect::xyxy(x, y, x, y), next_id);
                next_id += 1;
                tree.insert(it, SplitPolicy::Quadratic).unwrap();
                reference.push(it);
            }
        }
        tree.validate().unwrap().assert_ok();
        let q = Rect::xyxy(0.2, 0.2, 0.7, 0.7);
        let mut got: Vec<u32> = tree.window(&q).unwrap().iter().map(|i| i.id).collect();
        got.sort_unstable();
        assert_eq!(got, brute(&reference, &q), "{}", kind.name());
    }
}

#[test]
fn lpr_tree_matches_rtree_under_identical_op_stream() {
    let params = TreeParams::with_cap::<2>(8);
    let dev1: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mut guttman = RTree::<2>::new_empty(dev1, params).unwrap();
    let dev2: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mut lpr = LprTree::<2>::new(dev2, params, 32);
    let mut reference: Vec<Item<2>> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut next_id = 0u32;

    for step in 0..1200 {
        if reference.is_empty() || rng.gen_bool(0.6) {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let it = Item::new(Rect::xyxy(x, y, x, y), next_id);
            next_id += 1;
            guttman.insert(it, SplitPolicy::RStar).unwrap();
            lpr.insert(it).unwrap();
            reference.push(it);
        } else {
            let idx = rng.gen_range(0..reference.len());
            let victim = reference.swap_remove(idx);
            assert!(guttman.delete(&victim, SplitPolicy::RStar).unwrap());
            assert!(lpr.delete(&victim).unwrap());
        }
        if step % 200 == 199 {
            let q = Rect::xyxy(0.1, 0.3, 0.6, 0.9);
            let want = brute(&reference, &q);
            let mut a: Vec<u32> = guttman.window(&q).unwrap().iter().map(|i| i.id).collect();
            a.sort_unstable();
            assert_eq!(a, want, "guttman at step {step}");
            let (hits, _) = lpr.window(&q).unwrap();
            let mut b: Vec<u32> = hits.iter().map(|i| i.id).collect();
            b.sort_unstable();
            assert_eq!(b, want, "lpr at step {step}");
        }
    }
    assert_eq!(guttman.len(), reference.len() as u64);
    assert_eq!(lpr.len(), reference.len() as u64);
}

#[test]
fn updates_preserve_query_correctness_on_rectangles_not_just_points() {
    let params = TreeParams::with_cap::<2>(6);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mut tree = RTree::<2>::new_empty(dev, params).unwrap();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut reference = Vec::new();
    for id in 0..500u32 {
        let x: f64 = rng.gen_range(0.0..10.0);
        let y: f64 = rng.gen_range(0.0..10.0);
        let w: f64 = rng.gen_range(0.0..3.0); // overlapping rects
        let h: f64 = rng.gen_range(0.0..3.0);
        let it = Item::new(Rect::xyxy(x, y, x + w, y + h), id);
        tree.insert(it, SplitPolicy::Linear).unwrap();
        reference.push(it);
    }
    // Delete every third.
    for it in reference.iter().step_by(3) {
        assert!(tree.delete(it, SplitPolicy::Linear).unwrap());
    }
    let survivors: Vec<Item<2>> = reference
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, &it)| it)
        .collect();
    tree.validate().unwrap().assert_ok();
    for q in [
        Rect::xyxy(0.0, 0.0, 5.0, 5.0),
        Rect::xyxy(7.0, 7.0, 13.0, 13.0),
        Rect::xyxy(4.9, 0.0, 5.1, 10.0),
    ] {
        let mut got: Vec<u32> = tree.window(&q).unwrap().iter().map(|i| i.id).collect();
        got.sort_unstable();
        assert_eq!(got, brute(&survivors, &q));
    }
}
