//! Cross-crate integration: every bulk loader × every dataset family,
//! all answering every query identically (and identically to brute
//! force), with valid structure.

use pr_data::queries::square_queries;
use pr_data::{
    aspect_dataset, cluster_dataset, size_dataset, skewed_dataset, uniform_points, worst_case_grid,
    TigerProfile,
};
use prtree::prelude::*;
use std::sync::Arc;

fn datasets() -> Vec<(&'static str, Vec<Item<2>>)> {
    vec![
        ("uniform", uniform_points(3_000, 1)),
        ("size", size_dataset(3_000, 0.05, 2)),
        ("aspect", aspect_dataset(3_000, 100.0, 3)),
        ("skewed", skewed_dataset(3_000, 5, 4)),
        ("cluster", cluster_dataset(30, 100, 1e-5, 5)),
        ("tiger", TigerProfile::eastern().generate(3_000, 5)),
        ("worstcase", worst_case_grid(5, 64)),
    ]
}

fn brute(items: &[Item<2>], q: &Rect<2>) -> Vec<u32> {
    let mut ids: Vec<u32> = items
        .iter()
        .filter(|i| i.rect.intersects(q))
        .map(|i| i.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn all_variants_agree_with_brute_force_on_all_datasets() {
    let params = TreeParams::with_cap::<2>(16);
    for (name, items) in datasets() {
        let domain = Rect::mbr_of(items.iter().map(|i| &i.rect));
        let queries = square_queries(&domain, 0.01, 15, 42);
        let expected: Vec<Vec<u32>> = queries.iter().map(|q| brute(&items, q)).collect();
        for kind in LoaderKind::all() {
            let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
            let tree = kind
                .loader::<2>()
                .load(dev, params, items.clone())
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", kind.name()));
            let report = tree.validate().unwrap();
            assert!(
                report.is_ok(),
                "{name}/{}: {:?}",
                kind.name(),
                report.errors
            );
            assert_eq!(tree.len(), items.len() as u64);
            for (q, want) in queries.iter().zip(&expected) {
                let mut got: Vec<u32> = tree.window(q).unwrap().iter().map(|i| i.id).collect();
                got.sort_unstable();
                assert_eq!(&got, want, "{name}/{} query {q:?}", kind.name());
            }
        }
    }
}

#[test]
fn pseudo_pr_tree_agrees_with_pr_tree_results() {
    let items = uniform_points(4_000, 9);
    let params = TreeParams::with_cap::<2>(16);
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = PrTreeLoader::default()
        .load(dev, params, items.clone())
        .unwrap();
    let pseudo = PseudoPrTree::build(items.clone(), 16);
    for q in square_queries(&Rect::xyxy(0.0, 0.0, 1.0, 1.0), 0.02, 20, 3) {
        let mut a: Vec<u32> = tree.window(&q).unwrap().iter().map(|i| i.id).collect();
        let mut b: Vec<u32> = pseudo.window(&q).iter().map(|i| i.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn utilization_is_high_for_all_bulk_loaders() {
    let items = uniform_points(6_000, 11);
    let params = TreeParams::with_cap::<2>(32);
    for kind in LoaderKind::all() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = kind.loader::<2>().load(dev, params, items.clone()).unwrap();
        let util = tree.stats().unwrap().utilization();
        assert!(
            util > 0.9,
            "{}: utilization {util:.3} below the paper's ~100%",
            kind.name()
        );
    }
}

#[test]
fn duplicate_coordinates_are_handled_by_every_loader() {
    // Many identical rectangles: orderings fall back to id tie-breaks.
    let items: Vec<Item<2>> = (0..500)
        .map(|i| Item::new(Rect::xyxy(1.0, 1.0, 2.0, 2.0), i))
        .collect();
    let params = TreeParams::with_cap::<2>(8);
    for kind in LoaderKind::all() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = kind.loader::<2>().load(dev, params, items.clone()).unwrap();
        tree.validate().unwrap().assert_ok();
        let hits = tree.window(&Rect::xyxy(0.0, 0.0, 3.0, 3.0)).unwrap();
        assert_eq!(hits.len(), 500, "{}", kind.name());
    }
}

#[test]
fn paper_parameters_work_end_to_end() {
    // Full 4KB pages / fanout 113, as in every experiment.
    let items = uniform_points(30_000, 13);
    let params = TreeParams::paper_2d();
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let tree = PrTreeLoader::default()
        .load(dev, params, items.clone())
        .unwrap();
    assert_eq!(tree.height(), 3); // 30000/113 = 266 leaves; /113 = 3 nodes; root
    tree.validate().unwrap().assert_ok();
    let q = Rect::xyxy(0.25, 0.25, 0.75, 0.75);
    assert_eq!(tree.window(&q).unwrap().len(), brute(&items, &q).len());
}
