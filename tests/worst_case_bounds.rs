//! Integration: the theory, checked empirically.
//!
//! * Lemma 2 / Theorem 2: PR-tree query cost scales like `√(N/B) + T/B`.
//! * Theorem 3: H, H4 and TGS degenerate on the shifted grid; PR does not.

use pr_data::{uniform_points, worst_case::worst_case_line_query, worst_case_grid};
use prtree::prelude::*;
use std::sync::Arc;

fn build(kind: LoaderKind, items: &[Item<2>], params: TreeParams) -> RTree<2> {
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    kind.loader::<2>()
        .load(dev, params, items.to_vec())
        .unwrap()
}

#[test]
fn theorem_3_separation_small_grid() {
    let params = TreeParams::with_cap::<2>(32);
    let b = 32u32;
    let k = 7; // 128 columns, 4096 points
    let items = worst_case_grid(k, b);
    let q = worst_case_line_query(k, b);

    let mut visited = std::collections::HashMap::new();
    for kind in LoaderKind::paper_four() {
        let tree = build(kind, &items, params);
        let (hits, stats) = tree.window_with_stats(&q).unwrap();
        assert!(hits.is_empty(), "{}: line query must be empty", kind.name());
        visited.insert(kind.name(), stats.leaves_visited);
    }
    let leaves = 1u64 << k;
    // The heuristics visit essentially every leaf…
    for name in ["H", "H4", "TGS"] {
        assert!(
            visited[name] * 10 >= leaves * 9,
            "{name} visited {} of {leaves} leaves — Theorem 3 expects ~all",
            visited[name]
        );
    }
    // …the PR-tree visits O(√(N/B)).
    let bound = ((items.len() as f64) / b as f64).sqrt();
    assert!(
        (visited["PR"] as f64) <= 4.0 * bound,
        "PR visited {} leaves; 4·√(N/B) = {:.0}",
        visited["PR"],
        4.0 * bound
    );
}

#[test]
fn pr_tree_empty_query_cost_grows_sublinearly() {
    // Empty-output strip queries on uniform points: PR cost should grow
    // roughly like √N, so quadrupling N should roughly double the cost —
    // and certainly not quadruple it.
    let params = TreeParams::with_cap::<2>(16);
    let mut costs = Vec::new();
    for n in [4_000u32, 16_000, 64_000] {
        let items = uniform_points(n, 77);
        let tree = build(LoaderKind::Pr, &items, params);
        // A zero-area vertical line at x = 0.5 (degenerate rectangle
        // strictly between points almost surely).
        let q = Rect::xyxy(0.5, 0.0, 0.5, 1.0);
        let (_, stats) = tree.window_with_stats(&q).unwrap();
        costs.push(stats.leaves_visited as f64);
    }
    let g1 = costs[1] / costs[0];
    let g2 = costs[2] / costs[1];
    assert!(
        g1 < 3.0 && g2 < 3.0,
        "4× data should not triple empty-query cost: {costs:?}"
    );
}

#[test]
fn hilbert_tree_visits_all_columns_on_the_grid() {
    // The structural mechanism behind Theorem 3 for H: each leaf is one
    // column (§2.4: "the packed Hilbert R-tree makes a leaf for every
    // column").
    let params = TreeParams::with_cap::<2>(16);
    let items = worst_case_grid(6, 16);
    let tree = build(LoaderKind::Hilbert, &items, params);
    let mut stack = vec![tree.root()];
    let mut column_leaves = 0;
    let mut leaves = 0;
    while let Some(p) = stack.pop() {
        let (node, _) = tree.read_node(p).unwrap();
        if node.is_leaf() {
            leaves += 1;
            let mbr = node.mbr();
            if mbr.extent(0) == 0.0 {
                column_leaves += 1; // all 16 points share one x
            }
        } else {
            for e in &node.entries {
                stack.push(e.ptr as u64);
            }
        }
    }
    assert_eq!(leaves, 64);
    // Quantization makes the point slab slightly taller than one curve
    // cell, so a handful of columns straddle leaves; the majority must
    // still be pure columns (zero x-extent), and — the part Theorem 3
    // actually needs — the empty line query must visit almost all leaves.
    assert!(
        column_leaves * 2 >= leaves,
        "{column_leaves}/{leaves} single-column leaves"
    );
    let q = worst_case_line_query(6, 16);
    tree.warm_cache().unwrap();
    let (hits, stats) = tree.window_with_stats(&q).unwrap();
    assert!(hits.is_empty());
    assert!(
        stats.leaves_visited * 10 >= leaves * 9,
        "line query visited only {} of {leaves} leaves",
        stats.leaves_visited
    );
}
