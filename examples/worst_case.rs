//! Theorem 3, live: the dataset that defeats every classic bulk loader.
//!
//! Builds the paper's shifted-grid point set (§2.4, Figure 3) and runs a
//! horizontal line query that reports *nothing*. The packed Hilbert,
//! 4-D Hilbert and TGS trees all read essentially every leaf; the
//! PR-tree reads `O(√(N/B))`.
//!
//! ```text
//! cargo run --release --example worst_case
//! ```

use pr_data::{worst_case::worst_case_line_query, worst_case_grid};
use prtree::prelude::*;
use std::sync::Arc;

fn main() {
    let params = TreeParams::paper_2d();
    let k = 10; // 2^10 = 1024 columns
    let b = params.leaf_cap as u32; // 113 rows — one column = one leaf
    let items = worst_case_grid(k, b);
    let query = worst_case_line_query(k, b);
    println!(
        "worst-case grid: {} points in {} columns × {} rows",
        items.len(),
        1 << k,
        b
    );
    println!("query: a horizontal line between the rows (output size 0)\n");

    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "tree", "leaves visited", "total leaves", "fraction"
    );
    for kind in [
        LoaderKind::Hilbert,
        LoaderKind::Hilbert4,
        LoaderKind::Tgs,
        LoaderKind::Str,
        LoaderKind::Pr,
    ] {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let tree = kind
            .loader::<2>()
            .load(dev, params, items.clone())
            .expect("build");
        tree.warm_cache().unwrap();
        let (hits, stats) = tree.window_with_stats(&query).expect("query");
        assert!(hits.is_empty(), "the line must not touch any point");
        let leaves = tree.stats().unwrap().num_leaves();
        println!(
            "{:<6} {:>14} {:>14} {:>9.1}%",
            kind.name(),
            stats.leaves_visited,
            leaves,
            stats.leaves_visited as f64 / leaves as f64 * 100.0
        );
    }
    let bound = ((items.len() as f64) / b as f64).sqrt();
    println!(
        "\nTheorem 2 bound for the PR-tree: O(√(N/B)) ≈ {bound:.0} leaves; \
         Theorem 3: the others need Θ(N/B)."
    );
}
