//! Quickstart: bulk-load a PR-tree and run window queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prtree::prelude::*;
use std::sync::Arc;

fn main() {
    // 100k rectangles on a jittered grid — stand-ins for map features.
    let items: Vec<Item<2>> = (0..100_000u32)
        .map(|i| {
            let x = (i % 1000) as f64 + (i as f64 * 0.618).fract() * 0.5;
            let y = (i / 1000) as f64 + (i as f64 * 0.414).fract() * 0.5;
            Item::new(Rect::xyxy(x, y, x + 0.4, y + 0.4), i)
        })
        .collect();
    println!("indexing {} rectangles…", items.len());

    // The paper's exact setup: 4KB pages, 36-byte entries, fanout 113.
    let params = TreeParams::paper_2d();
    let dev = Arc::new(MemDevice::default_size());
    let tree = PrTreeLoader::default()
        .load(dev, params, items)
        .expect("bulk load");

    println!(
        "built a PR-tree: height {}, {} items, {:.1}% space utilization",
        tree.height(),
        tree.len(),
        tree.stats().unwrap().utilization() * 100.0
    );

    // Cache internal nodes (the paper's query configuration), then query.
    tree.warm_cache().unwrap();
    for (label, q) in [
        ("small window", Rect::xyxy(500.0, 50.0, 510.0, 60.0)),
        ("wide strip", Rect::xyxy(0.0, 42.0, 1000.0, 42.5)),
        ("empty area", Rect::xyxy(2000.0, 2000.0, 2100.0, 2100.0)),
    ] {
        let (hits, stats) = tree.window_with_stats(&q).expect("query");
        println!(
            "{label:>12}: {} hits, {} leaf I/Os (optimal ⌈T/B⌉ = {})",
            hits.len(),
            stats.leaves_visited,
            stats.output_blocks(params.leaf_cap),
        );
    }
}
