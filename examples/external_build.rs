//! External-memory bulk loading with exact I/O accounting.
//!
//! Reproduces the flavor of the paper's Figure 9 in miniature: build the
//! same dataset with the external H, H4, PR and TGS algorithms under a
//! TPIE-style memory budget and report how many 4KB blocks each one
//! moved. Also demonstrates that the same code runs against a real file
//! on disk via `FileDevice`.
//!
//! ```text
//! cargo run --release --example external_build
//! ```

use prtree::prelude::*;
use prtree::tree::bulk::external::load_hilbert_external;
use prtree::tree::bulk::tgs_external::TgsExternalLoader;
use prtree::tree::Entry;
use std::sync::Arc;

fn main() {
    let n: u32 = 200_000;
    let items = pr_data::TigerProfile::eastern().generate(n, 5);
    let params = TreeParams::paper_2d();
    // The paper's N/M ≈ 9: memory holds a ninth of the input.
    let memory = (n as usize / 9) * 36;
    let config = ExternalConfig::with_memory(memory);
    println!(
        "bulk-loading {n} rectangles externally (memory budget {} records)\n",
        memory / 36
    );

    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "tree", "blocks read", "blocks written", "seconds"
    );
    for kind in [
        LoaderKind::Hilbert,
        LoaderKind::Hilbert4,
        LoaderKind::Pr,
        LoaderKind::Tgs,
    ] {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
        let input = Stream::from_iter(
            dev.as_ref(),
            items.iter().map(|&i| Entry::<2>::from_item(i)),
        )
        .expect("input stream");
        let before = dev.io_stats();
        let start = std::time::Instant::now();
        let tree = match kind {
            LoaderKind::Pr => PrExternalLoader::new(config)
                .load::<2>(Arc::clone(&dev), params, &input)
                .expect("build"),
            LoaderKind::Tgs => TgsExternalLoader::new(config)
                .load::<2>(Arc::clone(&dev), params, &input)
                .expect("build"),
            LoaderKind::Hilbert => {
                load_hilbert_external::<2>(Arc::clone(&dev), params, &input, config, false)
                    .expect("build")
            }
            LoaderKind::Hilbert4 => {
                load_hilbert_external::<2>(Arc::clone(&dev), params, &input, config, true)
                    .expect("build")
            }
            LoaderKind::Str => unreachable!(),
        };
        let secs = start.elapsed().as_secs_f64();
        let io = dev.io_stats().since(before);
        assert_eq!(tree.len(), n as u64);
        println!(
            "{:<6} {:>12} {:>12} {:>10.2}",
            kind.name(),
            io.reads,
            io.writes,
            secs
        );
    }

    // The same PR build against a real file on disk.
    let path = std::env::temp_dir().join("prtree-external-build.bin");
    let dev: Arc<dyn BlockDevice> =
        Arc::new(FileDevice::create(&path, params.page_size).expect("create file device"));
    let input = Stream::from_iter(
        dev.as_ref(),
        items.iter().map(|&i| Entry::<2>::from_item(i)),
    )
    .expect("input stream");
    let tree = PrExternalLoader::new(config)
        .load::<2>(Arc::clone(&dev), params, &input)
        .expect("file-backed build");
    let q = Rect::xyxy(0.3, 0.3, 0.35, 0.35);
    let hits = tree.window(&q).expect("query").len();
    println!(
        "\nfile-backed PR-tree at {}: {} items, {hits} hits for a sample window",
        path.display(),
        tree.len()
    );
    std::fs::remove_file(&path).ok();
}
