//! Regenerates the paper's dataset illustrations (Figures 3, 5–8) as
//! ASCII density plots and PGM images.
//!
//! * Figure 3 — the worst-case shifted grid (§2.4)
//! * Figure 5 — SIZE(0.001)
//! * Figure 6 — ASPECT(10)
//! * Figure 7 — SKEWED(5)
//! * Figure 8 — CLUSTER
//!
//! ```text
//! cargo run --release --example paper_figures [out_dir]
//! ```
//!
//! Without an argument only the ASCII plots are printed; with one, PGM
//! files are also written to `out_dir`.

use pr_data::{aspect_dataset, cluster_dataset, size_dataset, skewed_dataset, worst_case_grid};
use prtree::prelude::*;

const W: usize = 72;
const H: usize = 24;

fn density(items: &[Item<2>], window: &Rect<2>, w: usize, h: usize) -> Vec<f64> {
    let mut grid = vec![0.0f64; w * h];
    for it in items {
        let c = it.rect.center();
        if !window.contains_point(&c) {
            continue;
        }
        let gx = (((c.coord(0) - window.lo_at(0)) / window.extent(0)) * w as f64) as usize;
        let gy = (((c.coord(1) - window.lo_at(1)) / window.extent(1)) * h as f64) as usize;
        grid[gy.min(h - 1) * w + gx.min(w - 1)] += 1.0;
    }
    grid
}

fn ascii_plot(title: &str, items: &[Item<2>], window: &Rect<2>) {
    let grid = density(items, window, W, H);
    let max = grid.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    println!("--- {title} ---");
    // y grows upward, terminal rows grow downward.
    for row in (0..H).rev() {
        let mut line = String::with_capacity(W);
        for col in 0..W {
            let v = grid[row * W + col];
            let idx = ((v / max).powf(0.4) * (shades.len() - 1) as f64).round() as usize;
            line.push(shades[idx.min(shades.len() - 1)]);
        }
        println!("|{line}|");
    }
    println!();
}

fn write_pgm(path: &std::path::Path, items: &[Item<2>], window: &Rect<2>) {
    let (w, h) = (512usize, 512usize);
    let grid = density(items, window, w, h);
    let max = grid.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let mut data = format!("P2\n{w} {h}\n255\n");
    for row in (0..h).rev() {
        for col in 0..w {
            let v = grid[row * w + col];
            let px = 255 - ((v / max).powf(0.4) * 255.0).round() as u32;
            data.push_str(&px.to_string());
            data.push(' ');
        }
        data.push('\n');
    }
    std::fs::write(path, data).expect("write pgm");
}

fn main() {
    let out_dir = std::env::args().nth(1).map(std::path::PathBuf::from);
    if let Some(d) = &out_dir {
        std::fs::create_dir_all(d).expect("create out dir");
    }
    let unit = Rect::xyxy(0.0, 0.0, 1.0, 1.0);

    // Figure 3: the worst-case grid (zoom into the first 64 columns so
    // the shifted-column structure is visible, like the paper's crop).
    let grid = worst_case_grid(8, 16);
    let crop = Rect::xyxy(0.0, 0.0, 64.0, 1.0);
    let figures: Vec<(&str, Vec<Item<2>>, Rect<2>)> = vec![
        ("fig3: worst-case grid (first 64 columns)", grid, crop),
        ("fig5: SIZE(0.001)", size_dataset(40_000, 0.001, 1), unit),
        ("fig6: ASPECT(10)", aspect_dataset(40_000, 10.0, 2), unit),
        ("fig7: SKEWED(5)", skewed_dataset(40_000, 5, 3), unit),
        (
            "fig8: CLUSTER (zoom on the cluster line)",
            cluster_dataset(60, 400, 1e-5, 4),
            Rect::xyxy(0.0, 0.4999, 1.0, 0.5001),
        ),
    ];
    for (title, items, window) in &figures {
        ascii_plot(title, items, window);
        if let Some(d) = &out_dir {
            let file = title.split(':').next().unwrap_or("fig");
            write_pgm(&d.join(format!("{file}.pgm")), items, window);
        }
    }
    if let Some(d) = &out_dir {
        println!("PGM images written to {}", d.display());
    }
}
