//! Dynamic maintenance: Guttman updates vs the LPR-tree.
//!
//! The paper (§4) warns that heuristic updates void the PR-tree's query
//! guarantee and proposes the logarithmic method as the alternative.
//! This example runs both on the same update stream and compares query
//! cost at the end.
//!
//! ```text
//! cargo run --release --example dynamic_index
//! ```

use pr_data::queries::square_queries;
use pr_data::uniform_points;
use prtree::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 50_000u32;
    let n_updates = 15_000usize;
    let params = TreeParams::paper_2d();
    let base = uniform_points(n, 7);
    let unit = Rect::xyxy(0.0, 0.0, 1.0, 1.0);
    let queries = square_queries(&unit, 0.01, 100, 9);

    // Road A: bulk-load a PR-tree, then hammer it with Guttman updates.
    let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mut guttman = PrTreeLoader::default()
        .load(dev, params, base.clone())
        .expect("bulk load");

    // Road B: an LPR-tree built incrementally from scratch.
    let dev2: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let mut lpr = LprTree::<2>::new(dev2, params, 4096);
    for &it in &base {
        lpr.insert(it).expect("lpr insert");
    }

    // Same churn on both: delete a random live item, insert a fresh one.
    let mut live = base;
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut next_id = n;
    #[allow(clippy::explicit_counter_loop)] // next_id doubles as item id
    for _ in 0..n_updates {
        let idx = (rnd() % live.len() as u64) as usize;
        let victim = live.swap_remove(idx);
        guttman
            .delete(&victim, SplitPolicy::Quadratic)
            .expect("delete");
        lpr.delete(&victim).expect("lpr delete");
        let x = (rnd() % 1_000_000) as f64 / 1_000_000.0;
        let y = (rnd() % 1_000_000) as f64 / 1_000_000.0;
        let fresh = Item::new(Rect::xyxy(x, y, x, y), next_id);
        next_id += 1;
        guttman
            .insert(fresh, SplitPolicy::Quadratic)
            .expect("insert");
        lpr.insert(fresh).expect("lpr insert");
        live.push(fresh);
    }
    println!("applied {n_updates} delete+insert pairs to both structures\n");

    // Compare query cost (leaf I/Os per query).
    guttman.warm_cache().unwrap();
    let mut g_leaves = 0u64;
    for q in &queries {
        let (_, s) = guttman.window_count(q).expect("query");
        g_leaves += s.leaves_visited;
    }
    let mut l_leaves = 0u64;
    for q in &queries {
        let (_, s) = lpr.window(q).expect("query");
        l_leaves += s.leaves_visited;
    }
    // Reference: a freshly bulk-loaded PR-tree over the live set.
    let dev3: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
    let fresh_tree = PrTreeLoader::default()
        .load(dev3, params, live)
        .expect("rebuild");
    fresh_tree.warm_cache().unwrap();
    let mut f_leaves = 0u64;
    for q in &queries {
        let (_, s) = fresh_tree.window_count(q).expect("query");
        f_leaves += s.leaves_visited;
    }

    let per = queries.len() as f64;
    println!("avg leaf I/Os per 1%-area query after the churn:");
    println!("  Guttman-updated PR-tree : {:>7.1}", g_leaves as f64 / per);
    println!(
        "  LPR-tree ({} components) : {:>7.1}",
        lpr.num_components(),
        l_leaves as f64 / per
    );
    println!("  freshly rebuilt PR-tree : {:>7.1}", f_leaves as f64 / per);
    println!(
        "\nLPR-tree consistency check: {} live items (expected {})",
        lpr.len(),
        fresh_tree.len()
    );
}
