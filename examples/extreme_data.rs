//! The paper's core claim, live: on extreme data the PR-tree stays near
//! the optimal query cost while the classic packings fall apart.
//!
//! Builds all five bulk loaders (PR, H, H4, TGS, STR) over three of the
//! paper's stress datasets and prints the relative query cost
//! (leaf I/Os ÷ ⌈T/B⌉; 100% = optimal).
//!
//! ```text
//! cargo run --release --example extreme_data
//! ```

use pr_data::queries::square_queries;
use pr_data::{aspect_dataset, size_dataset, skewed_dataset};
use prtree::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 400_000;
    let datasets = vec![
        ("SIZE(0.2): big rectangles", size_dataset(n, 0.2, 1)),
        ("ASPECT(10000): needles", aspect_dataset(n, 10_000.0, 2)),
        ("SKEWED(9): squeezed points", skewed_dataset(n, 9, 3)),
    ];
    let params = TreeParams::paper_2d();
    let unit = Rect::xyxy(0.0, 0.0, 1.0, 1.0);
    let kinds = [
        LoaderKind::Pr,
        LoaderKind::Hilbert,
        LoaderKind::Hilbert4,
        LoaderKind::Tgs,
        LoaderKind::Str,
    ];

    println!("relative query cost: leaf I/Os ÷ ⌈T/B⌉ over 50 1%-area windows (100% = optimal)\n");
    println!(
        "{:<30} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "dataset", "PR", "H", "H4", "TGS", "STR"
    );
    let mut worst = vec![0.0f64; kinds.len()];
    for (name, items) in datasets {
        // SKEWED queries follow the data's transform so output stays put.
        let queries = if name.starts_with("SKEWED") {
            pr_data::queries::skewed_queries(9, 0.01, 50, 42)
        } else {
            square_queries(&unit, 0.01, 50, 42)
        };
        print!("{name:<30}");
        for (ki, kind) in kinds.iter().enumerate() {
            let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(params.page_size));
            let tree = kind
                .loader::<2>()
                .load(dev, params, items.clone())
                .expect("build");
            tree.warm_cache().unwrap();
            let mut rel_sum = 0.0;
            let mut rel_n = 0u32;
            for q in &queries {
                let (_, stats) = tree.window_count(q).expect("query");
                if let Some(r) = stats.relative_cost(params.leaf_cap) {
                    rel_sum += r;
                    rel_n += 1;
                }
            }
            let rel = rel_sum / rel_n as f64;
            worst[ki] = worst[ki].max(rel);
            print!(" {:>6.0}%", rel * 100.0);
        }
        println!();
    }
    let best = worst
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    println!(
        "\nmost robust across the three stress tests: {} (worst case {:.0}%).\n\
         The gaps widen with N — at the paper's 10M the PR-tree is near-optimal\n\
         everywhere while H/TGS degrade severely (see EXPERIMENTS.md).",
        kinds[best.0].name(),
        best.1 * 100.0
    );
}
