//! Offline shim for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendors the API
//! subset the workspace's benches use — `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!`
//! and [`black_box`] — backed by a plain wall-clock harness.
//!
//! Reporting: each benchmark prints `group/id  min … mean … max` per-iter
//! times to stdout. There is no statistical analysis, HTML report, or
//! baseline comparison; for paper-grade numbers swap the real criterion
//! back in via `[workspace.dependencies]` (sources need no change).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Unit of work reported per iteration (accepted, used for ns/elem).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Measurement loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, running a few warm-up iterations then `sample_size`
    /// measured ones.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2.min(self.sample_size) {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput (reported as ns/elem).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark that closes over its input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Runs a benchmark against an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let ns: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
        let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ns.iter().cloned().fold(0.0, f64::max);
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let per_elem = match self.throughput {
            Some(Throughput::Elements(n)) if n > 0 => {
                format!("  ({:.1} ns/elem)", mean / n as f64)
            }
            Some(Throughput::Bytes(n)) if n > 0 => {
                format!("  ({:.3} ns/byte)", mean / n as f64)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<28} [{} .. {} .. {}]{per_elem}",
            self.name,
            id.id,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function("run", f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // 2 warm-up + 3 measured.
        assert_eq!(runs, 5);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
