//! Offline shim for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendors the
//! subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map`, range / `any::<T>()` / tuple
//!   strategies, and `prop::collection::{vec, hash_set}`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case number and seed;
//!   cases are deterministic per (test name, case index), so failures
//!   reproduce exactly on re-run.
//! * **Deterministic by default.** There is no `PROPTEST_CASES` env or
//!   persistence file; [`ProptestConfig::default`] runs 64 cases.
//!
//! Swap for the real crate by repointing `[workspace.dependencies]`;
//! test sources need no changes.

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};
use std::marker::PhantomData;
use std::ops::Range;

/// Random source handed to strategies (re-exported for custom impls).
pub type TestRng = SmallRng;

/// A recoverable test-case failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
    /// Source file of the failed assertion.
    pub file: &'static str,
    /// Source line of the failed assertion.
    pub line: u32,
}

impl TestCaseError {
    /// Creates a failure (used by the assertion macros).
    pub fn fail(message: String, file: &'static str, line: u32) -> Self {
        TestCaseError {
            message,
            file,
            line,
        }
    }
}

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Half-open ranges are strategies (uniform sample).
impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy for the full domain of `T` — see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// The `any::<T>()` strategy: a uniformly random `T`.
pub fn any<T: Standard>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Standard> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies, addressed as `prop::collection::*` like the
/// real crate.
pub mod prop {
    /// Strategies producing collections of another strategy's values.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` of values from `element`, length uniform in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.start..self.len.end);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `HashSet<S::Value>` with size drawn from `size`.
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `HashSet` of values from `element`, target size uniform in
        /// `size`. Duplicate draws are retried a bounded number of times,
        /// so tiny value domains yield smaller sets rather than looping.
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            assert!(size.start < size.end, "empty size range");
            HashSetStrategy { element, size }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let target = rng.gen_range(self.size.start..self.size.end);
                let mut out = HashSet::with_capacity(target);
                let mut attempts = 0usize;
                while out.len() < target && attempts < 100 * (target + 1) {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{any, prop, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Derives the per-case RNG: deterministic in (test name, case index).
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

/// Declares property tests. Supports the subset of the real macro's
/// grammar used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(a in 0u32..10, b in any::<u64>()) {
///         prop_assert!(a < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property '{}' failed at case {}/{} ({}:{}): {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e.file,
                        e.line,
                        e.message
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
                file!(),
                line!(),
            ));
        }
    };
}

/// `assert_eq!` flavored for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => {
        match (&$l, &$r) {
            (__lv, __rv) => {
                $crate::prop_assert!(
                    *__lv == *__rv,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($l),
                    stringify!($r),
                    __lv,
                    __rv
                );
            }
        }
    };
    ($l:expr, $r:expr, $($fmt:tt)*) => {
        match (&$l, &$r) {
            (__lv, __rv) => {
                $crate::prop_assert!(
                    *__lv == *__rv,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    __lv,
                    __rv
                );
            }
        }
    };
}

/// `assert_ne!` flavored for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => {
        match (&$l, &$r) {
            (__lv, __rv) => {
                $crate::prop_assert!(
                    *__lv != *__rv,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($l),
                    stringify!($r),
                    __lv
                );
            }
        }
    };
    ($l:expr, $r:expr, $($fmt:tt)*) => {
        match (&$l, &$r) {
            (__lv, __rv) => {
                $crate::prop_assert!(*__lv != *__rv, $($fmt)*);
            }
        }
    };
}

// Re-exports used by generated code and custom strategies.
pub use prop::collection;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = crate::case_rng("strategies_generate_in_domain", 0);
        for _ in 0..100 {
            let v = (0u32..7).generate(&mut rng);
            assert!(v < 7);
            let (a, b) = ((0usize..3), (1.0..2.0f64)).generate(&mut rng);
            assert!(a < 3 && (1.0..2.0).contains(&b));
            let vs = prop::collection::vec(any::<u8>(), 1..5).generate(&mut rng);
            assert!((1..5).contains(&vs.len()));
            let hs = prop::collection::hash_set((0u32..64, 0u32..64), 2..10).generate(&mut rng);
            assert!(hs.len() <= 10);
            let mapped = (0u32..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!(mapped % 2 == 0 && mapped < 10);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        use rand::Rng;
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_runs_and_asserts(x in 0u32..100, mut v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            v.sort_unstable();
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 100);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 5u64..6) {
            prop_assert_eq!(x, 5, "only value in range is {}", 5);
        }
    }
}
