//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the *subset* of parking_lot's API it actually uses, backed by
//! `std::sync` primitives. Semantics match parking_lot where the
//! workspace relies on them:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); poisoning is ignored by design — a panic while holding a
//!   lock propagates from the panicking thread, and other threads simply
//!   continue with the data as-is, exactly like parking_lot.
//! * Guards derive `Deref`/`DerefMut` from the std guards they wrap.
//!
//! Swap this for the real crate by pointing `[workspace.dependencies]`
//! back at crates.io; no source change needed.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn threads_share_mutex() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
