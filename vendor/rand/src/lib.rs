//! Offline shim for the `rand` crate (0.8-era API subset).
//!
//! The build container cannot reach crates.io, so this workspace vendors
//! the slice of `rand` it uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open ranges, [`Rng::gen_bool`], [`Rng::gen`]
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality, fast, and deterministic per
//! seed, which is all the workspace's reproducible experiments require.
//!
//! Note: the stream of values differs from the real `rand` crate's
//! `SmallRng` (which never guaranteed stability across versions anyway);
//! all workspace tests derive expectations from the same seeded stream,
//! so nothing depends on matching upstream bit-for-bit.

use std::ops::Range;

/// Core generator trait: a source of random `u64`s plus derived helpers.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_unit(self) < p
    }

    /// A uniformly random value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `range` (panics when empty, like rand 0.8).
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;

    /// Uniform sample from `[0, 1)`; only meaningful for floats, used by
    /// `gen_bool`. Integer types do not implement call paths that reach it.
    fn sample_unit<R: RngCore>(_rng: &mut R) -> f64 {
        unreachable!("sample_unit is only defined for floats")
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                // Widen to u128 so the span fits for every integer type,
                // then reject-sample to kill modulo bias.
                let span = (range.end as i128 - range.start as i128) as u128;
                let zone = u128::MAX - (u128::MAX % span);
                loop {
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if raw < zone {
                        return (range.start as i128 + (raw % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        let unit = Self::sample_unit(rng);
        let v = range.start + unit * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.end - (range.end - range.start) * f64::EPSILON
        } else {
            v
        }
    }

    fn sample_unit<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        let unit = f64::sample_unit(rng) as f32;
        let v = range.start + unit * (range.end - range.start);
        if v >= range.end {
            range.end - (range.end - range.start) * f32::EPSILON
        } else {
            v
        }
    }
}

/// Types with a `Standard` (full-domain uniform) distribution for
/// [`Rng::gen`].
pub trait Standard {
    /// A uniformly random value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        f64::sample_unit(rng)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind this shim's
    /// `SmallRng` (same algorithm family the real crate uses on 64-bit).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // SplitMix64 expansion guarantees a non-zero state.
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice methods that consume randomness.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element (None on empty slices).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "p=0.25 measured {frac}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_standard_types() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _: bool = rng.gen();
        let _: u32 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
